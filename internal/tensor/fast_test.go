package tensor

import (
	"math"
	"testing"
)

// Fast-kernel-mode property tests (DESIGN.md §14). Fast mode gives up
// bit-parity with the scalar oracle — FMA fuses the multiply/add rounding
// and GemmTB switches to preload association — so it is validated by
// forward-error bounds over the same shape table the deterministic
// bit-pin tests use, plus two exact pins: with FMA unavailable Fast mode
// must fall back to the deterministic kernels bit-for-bit, and Fast
// results must not depend on the worker count.

// fastBound is the forward-error bound between any two evaluation orders
// of one output element: 2(k+2)·eps·(Σ|alpha·a·b| + |beta·c|), the same
// analysis TestGemmTBReference uses for panel regrouping.
func fastBound(k int, mag float64) float64 {
	const eps = 1.0 / (1 << 24)
	return 2 * float64(k+2) * eps * mag
}

func checkFastVsRef(t *testing.T, name string, tc gemmCase, got, want, magAB []float32, c0 []float32) {
	t.Helper()
	for i := 0; i < tc.m; i++ {
		for j := 0; j < tc.n; j++ {
			x := i*tc.n + j
			mag := float64(magAB[x]) + math.Abs(float64(tc.beta)*float64(c0[x]))
			bound := fastBound(tc.k, mag)
			d := math.Abs(float64(got[x]) - float64(want[x]))
			if d > bound {
				t.Fatalf("%s %dx%dx%d alpha=%v beta=%v element (%d,%d): |%v-%v| = %g exceeds bound %g",
					name, tc.m, tc.k, tc.n, tc.alpha, tc.beta, i, j, got[x], want[x], d, bound)
			}
		}
	}
}

// magProducts accumulates Σ|alpha·a·b| per output element for the bound.
func magProducts(tc gemmCase, a, b []float32, ta, tb bool) []float32 {
	mag := make([]float32, tc.m*tc.n)
	for i := 0; i < tc.m; i++ {
		for j := 0; j < tc.n; j++ {
			var s float64
			for p := 0; p < tc.k; p++ {
				av := a[i*tc.k+p]
				if ta {
					av = a[p*tc.m+i]
				}
				bv := b[p*tc.n+j]
				if tb {
					bv = b[j*tc.k+p]
				}
				s += math.Abs(float64(tc.alpha) * float64(av) * float64(bv))
			}
			mag[i*tc.n+j] = float32(s)
		}
	}
	return mag
}

func TestGemmFastErrorBound(t *testing.T) {
	r := NewRNG(211)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmMode(Fast, tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, got)
		gemmRef(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, want)
		checkFastVsRef(t, "GemmMode(Fast)", tc, got, want, magProducts(tc, a, b, false, false), c0)
	}
}

func TestGemmTAFastErrorBound(t *testing.T) {
	r := NewRNG(223)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.k*tc.m) // stored k×m
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmTAMode(Fast, tc.alpha, a, tc.k, tc.m, b, tc.n, tc.beta, got)
		gemmTARef(tc.alpha, a, tc.k, tc.m, b, tc.n, tc.beta, want)
		checkFastVsRef(t, "GemmTAMode(Fast)", tc, got, want, magProducts(tc, a, b, true, false), c0)
	}
}

func TestGemmTBFastErrorBound(t *testing.T) {
	r := NewRNG(227)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.n*tc.k) // stored n×k
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmTBMode(Fast, tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, got)
		gemmTBRef(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, want)
		checkFastVsRef(t, "GemmTBMode(Fast)", tc, got, want, magProducts(tc, a, b, false, true), c0)
	}
}

// TestGemmFastFallbackBitIdentical pins the CROSSBOW_NOFMA / non-FMA-CPU
// behaviour: with the FMA kernels off, Fast mode must route through the
// deterministic driver and match it bit-for-bit.
func TestGemmFastFallbackBitIdentical(t *testing.T) {
	prev := setGemmFMA(false)
	defer setGemmFMA(prev)
	if fmaActive() {
		t.Fatal("setGemmFMA(false) did not disable the FMA path")
	}
	r := NewRNG(229)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmMode(Fast, tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, got)
		Gemm(tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, want)
		bitsEqual(t, "GemmMode(Fast) fallback", got, want)
	}
}

// TestGemmFastZWidthInvariant: on AVX-512 machines the 8×16 ZMM kernel is
// dispatched over the 8×8 YMM one, but both run the identical per-element
// FMA chain — results must match bit-for-bit with the wide kernel forced
// off (the CROSSBOW_NOAVX512 behaviour). On narrower CPUs both runs take
// the 8×8 path and the test is a tautology, which is fine.
func TestGemmFastZWidthInvariant(t *testing.T) {
	if !fmaActive() {
		t.Skip("FMA kernels unavailable")
	}
	r := NewRNG(257)
	for _, tc := range gemmCases() {
		a := randSlice(r, tc.m*tc.k)
		b := randSlice(r, tc.k*tc.n)
		c0 := randSlice(r, tc.m*tc.n)
		wide := append([]float32(nil), c0...)
		GemmMode(Fast, tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, wide)
		prev := setGemmZ(false)
		narrow := append([]float32(nil), c0...)
		GemmMode(Fast, tc.alpha, a, tc.m, tc.k, b, tc.n, tc.beta, narrow)
		setGemmZ(prev)
		bitsEqual(t, "GemmMode(Fast) ZMM width", wide, narrow)
	}
}

// TestGemmFastParallelDeterministic: fast-mode results are bit-stable
// across worker counts (per-element accumulation order never depends on
// the band split), even though they differ from the scalar oracle.
func TestGemmFastParallelDeterministic(t *testing.T) {
	r := NewRNG(233)
	m, k, n := 67, 130, 259
	a := randSlice(r, m*k)
	b := randSlice(r, k*n)
	c0 := randSlice(r, m*n)

	prev := Parallelism()
	defer SetParallelism(prev)

	var want []float32
	for _, workers := range []int{1, 2, 4, 13} {
		SetParallelism(workers)
		got := append([]float32(nil), c0...)
		GemmMode(Fast, 1.1, a, m, k, b, n, 0.9, got)
		if want == nil {
			want = got
			continue
		}
		bitsEqual(t, "GemmMode(Fast) parallel", got, want)
	}
}

// epiRef applies the epilogue sequence elementwise the way the unfused
// layer chain would: bias add, then eval-mode BN, then ReLU.
func epiRef(epi *Epilogue, c []float32, m, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			idx := i
			if epi.PerColumn {
				idx = j
			}
			v := c[i*n+j]
			if epi.Bias != nil {
				v += epi.Bias[idx]
			}
			if epi.Gamma != nil {
				v = epi.Gamma[idx]*((v-epi.Mean[idx])*epi.InvStd[idx]) + epi.Beta[idx]
			}
			if epi.ReLU && !(v > 0) {
				v = 0
			}
			c[i*n+j] = v
		}
	}
}

// TestGemmEpilogueBitIdentical: a fused epilogue must be a pure memory
// optimisation — bit-identical to running the GEMM then the elementwise
// chain as separate passes, in both kernel modes, for row- and
// column-indexed epilogues, across shapes that exercise the direct,
// packed and multi-slab paths.
func TestGemmEpilogueBitIdentical(t *testing.T) {
	r := NewRNG(239)
	shapes := [][3]int{{1, 1, 1}, {5, 7, 9}, {8, 72, 64}, {16, 144, 256}, {33, 260, 550}}
	for _, mode := range []KernelMode{Deterministic, Fast} {
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			a := randSlice(r, m*k)
			b := randSlice(r, k*n)
			c0 := randSlice(r, m*n)
			for _, perCol := range []bool{false, true} {
				vecLen := m
				if perCol {
					vecLen = n
				}
				epi := &Epilogue{
					Bias:      randSlice(r, vecLen),
					Gamma:     randSlice(r, vecLen),
					Beta:      randSlice(r, vecLen),
					Mean:      randSlice(r, vecLen),
					InvStd:    randSlice(r, vecLen),
					ReLU:      true,
					PerColumn: perCol,
				}
				fused := append([]float32(nil), c0...)
				GemmEpi(mode, 1, a, m, k, b, n, 0, fused, epi)
				unfused := append([]float32(nil), c0...)
				GemmMode(mode, 1, a, m, k, b, n, 0, unfused)
				epiRef(epi, unfused, m, n)
				bitsEqual(t, "GemmEpi "+mode.String(), fused, unfused)
			}
		}
	}
}

// TestGemmTBEpilogueBitIdentical covers the dense-layer shape (GemmTB with
// a per-column bias+ReLU epilogue).
func TestGemmTBEpilogueBitIdentical(t *testing.T) {
	r := NewRNG(241)
	for _, mode := range []KernelMode{Deterministic, Fast} {
		m, k, n := 32, 144, 10
		a := randSlice(r, m*k)
		b := randSlice(r, n*k)
		c0 := randSlice(r, m*n)
		epi := &Epilogue{Bias: randSlice(r, n), ReLU: true, PerColumn: true}
		fused := append([]float32(nil), c0...)
		GemmTBEpi(mode, 1, a, m, k, b, n, 0, fused, epi)
		unfused := append([]float32(nil), c0...)
		GemmTBMode(mode, 1, a, m, k, b, n, 0, unfused)
		epiRef(epi, unfused, m, n)
		bitsEqual(t, "GemmTBEpi "+mode.String(), fused, unfused)
	}
}

// int8 kernels: integer accumulation is exact, so the blocked kernels must
// match a naive triple loop exactly.
func TestGemmInt8MatchesNaive(t *testing.T) {
	r := NewRNG(251)
	for _, s := range [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 72, 33}, {16, 144, 64}, {31, 260, 17}} {
		m, k, n := s[0], s[1], s[2]
		a := make([]int8, m*k)
		b := make([]int8, k*n)
		for i := range a {
			a[i] = int8(r.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(r.Intn(255) - 127)
		}
		got := make([]int32, m*n)
		GemmInt8(a, m, k, b, n, got)
		bt := make([]int8, n*k) // also exercise the TB layout
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b[p*n+j]
			}
		}
		gotTB := make([]int32, m*n)
		GemmInt8TB(a, m, k, bt, n, gotTB)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want int32
				for p := 0; p < k; p++ {
					want += int32(a[i*k+p]) * int32(b[p*n+j])
				}
				if got[i*n+j] != want {
					t.Fatalf("GemmInt8 %v element (%d,%d): got %d want %d", s, i, j, got[i*n+j], want)
				}
				if gotTB[i*n+j] != want {
					t.Fatalf("GemmInt8TB %v element (%d,%d): got %d want %d", s, i, j, gotTB[i*n+j], want)
				}
			}
		}
	}
}

func TestQuantizeSym(t *testing.T) {
	src := []float32{0, 1, -2, 4, -4}
	dst := make([]int8, len(src))
	scale := QuantizeSym(src, dst)
	if scale != 4.0/127 {
		t.Fatalf("scale = %v, want %v", scale, 4.0/127)
	}
	for i, v := range src {
		back := float32(dst[i]) * scale
		if d := math.Abs(float64(back - v)); d > float64(scale)/2+1e-7 {
			t.Fatalf("element %d: %v dequantizes to %v (err %g > scale/2)", i, v, back, d)
		}
	}
	zeros := make([]float32, 4)
	if s := QuantizeSym(zeros, dst); s != 1 {
		t.Fatalf("all-zero scale = %v, want 1", s)
	}
}
