package tensor

import "sync"

// Blocked, register-tiled GEMM. The three public kernels (Gemm, GemmTA,
// GemmTB) share one cache-blocked driver: operands are packed into
// contiguous panels (B in NR-interleaved columns, A in MR-interleaved rows,
// transposition absorbed by the packers) and a 4×8 micro-kernel accumulates
// the output tile in registers. Work is fanned out over the shared bounded
// worker pool (parallel.go) by partitioning the output into disjoint row or
// column bands.
//
// Determinism contract (verified by blocked_test.go):
//   - Every output element is accumulated in strictly ascending-p order with
//     a float32 accumulator, independent of tile position, panel splits and
//     worker count — results are bit-identical at any parallelism level.
//   - Gemm and GemmTA preload the accumulator from C (beta applied up
//     front), reproducing the reference kernels' association exactly: they
//     are bit-identical to gemmRef/gemmTARef for all inputs.
//   - GemmTB applies alpha once per k-panel (c += alpha*Σ). It matches
//     gemmTBRef bit-for-bit while k ≤ gemmKC (every shape the scaled models
//     produce); for larger k the per-panel regrouping can differ from the
//     single-sum reference in the last bits, bounded by standard
//     forward-error analysis. See DESIGN.md §8.

const (
	gemmMR = 4   // micro-kernel tile rows
	gemmNR = 8   // micro-kernel tile cols (one YMM / two XMM vectors)
	gemmKC = 256 // k panel: packed A/B panel depth
	gemmMC = 128 // m panel: rows of A packed at once
	gemmNC = 512 // n panel: cols of B packed at once

	// parGrainFlops is roughly how many FLOPs one parallel chunk should
	// carry so that goroutine hand-off cost stays negligible.
	parGrainFlops = 1 << 18

	// gemmDirectBMax: when row-major B has at most this many elements
	// (512 KB — L2-resident), the micro-kernel reads its 8 columns straight
	// from B with a strided load instead of packing a panel first. Same
	// per-element order, so bits are unchanged; it just skips the pack
	// traffic, which dominates when m is small (conv layers).
	gemmDirectBMax = 128 << 10
)

type gemmKind int

const (
	gemmNN gemmKind = iota // A m×k, B k×n
	gemmTA                 // A stored k×m (logical Aᵀ), B k×n
	gemmTB                 // A m×k, B stored n×k (logical Bᵀ)
)

// gemmBufs are the per-call packing panels, recycled through a pool so the
// steady-state training loop does not allocate.
type gemmBufs struct {
	a []float32
	b []float32
}

var gemmPool = sync.Pool{New: func() any {
	return &gemmBufs{
		a: make([]float32, (gemmMC+gemmMR)*gemmKC),
		b: make([]float32, (gemmNC+gemmNR)*gemmKC),
	}
}}

// Gemm computes C = alpha*A*B + beta*C for row-major matrices, where A is
// m×k, B is k×n and C is m×n. It is the single hot kernel behind dense
// layers and im2col convolution.
func Gemm(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	gemmBlocked(gemmNN, alpha, a, m, k, b, n, beta, c, nil)
}

// GemmTA computes C = alpha*Aᵀ*B + beta*C where A is stored k×m (so Aᵀ is
// m×k), B is k×n and C is m×n. Used for weight-gradient accumulation.
func GemmTA(alpha float32, a []float32, k, m int, b []float32, n int, beta float32, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTA buffer too small")
	}
	gemmBlocked(gemmTA, alpha, a, m, k, b, n, beta, c, nil)
}

// GemmTB computes C = alpha*A*Bᵀ + beta*C where A is m×k, B is stored n×k
// (so Bᵀ is k×n) and C is m×n. Used for input-gradient propagation.
func GemmTB(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTB buffer too small")
	}
	gemmBlocked(gemmTB, alpha, a, m, k, b, n, beta, c, nil)
}

// scaleC applies the beta pre-pass shared by all kernels.
func scaleC(beta float32, c []float32) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		for i := range c {
			c[i] = 0
		}
		return
	}
	for i := range c {
		c[i] *= beta
	}
}

func gemmBlocked(kind gemmKind, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32, epi *Epilogue) {
	scaleC(beta, c[:m*n])
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		if epi != nil && m > 0 && n > 0 {
			applyEpi(epi, c, n, 0, m, 0, n)
		}
		return
	}
	if Parallelism() == 1 {
		// Serial fast path: no band closure, no pool hand-off.
		gemmBand(kind, alpha, a, m, k, b, n, c, 0, m, 0, n, epi)
		return
	}
	// Partition the larger output dimension into disjoint bands. Each band
	// is an independent GEMM over the same A/B, so bits never depend on the
	// split (see the determinism contract above). Bands are cut in units of
	// whole micro-kernel tiles so seams don't demote interior tiles to the
	// Go edge kernels.
	if m >= n {
		tiles := (m + gemmMR - 1) / gemmMR
		grain := 1 + parGrainFlops/(2*k*n*gemmMR)
		ParallelFor(tiles, grain, func(lo, hi int) {
			gemmBand(kind, alpha, a, m, k, b, n, c, lo*gemmMR, min(hi*gemmMR, m), 0, n, epi)
		})
		return
	}
	tiles := (n + gemmNR - 1) / gemmNR
	grain := 1 + parGrainFlops/(2*k*m*gemmNR)
	ParallelFor(tiles, grain, func(lo, hi int) {
		gemmBand(kind, alpha, a, m, k, b, n, c, 0, m, lo*gemmNR, min(hi*gemmNR, n), epi)
	})
}

// gemmBand runs the blocked kernel over the output band C[rowLo:rowHi,
// colLo:colHi]. beta has already been applied. An epilogue, when present,
// runs over each output region as soon as its last k panel completes —
// cache-hot, inside the same worker, once per element.
func gemmBand(kind gemmKind, alpha float32, a []float32, m, k int, b []float32, n int, c []float32, rowLo, rowHi, colLo, colHi int, epi *Epilogue) {
	// Fully direct mode: for gemmNN/gemmTA with alpha == 1 and L2-resident
	// operands the micro-kernel streams both A (strided broadcasts) and B
	// (strided row loads) from place — no packing at all. This is the
	// steady-state training configuration. Per-element accumulation order
	// is unchanged, so bits match the packed path exactly.
	if kind != gemmTB && alpha == 1 && k*n <= gemmDirectBMax && k*m <= gemmDirectBMax {
		// A element (i, p) strides: gemmNN stores A m×k, gemmTA stores k×m.
		ars, acs := k, 1
		if kind == gemmTA {
			ars, acs = 1, m
		}
		for i := rowLo; i < rowHi; i += gemmMR {
			rows := min(gemmMR, rowHi-i)
			var as []float32
			if kind == gemmTA {
				as = a[i:]
			} else {
				as = a[i*k:]
			}
			for j := colLo; j < colHi; j += gemmNR {
				cols := min(gemmNR, colHi-j)
				cp := c[i*n+j:]
				bs := b[j:]
				if rows == gemmMR && cols == gemmNR {
					gemmMicroPreDir(k, as, ars, acs, bs, n, cp, n)
				} else {
					microEdgeDirect(k, as, ars, acs, bs, n, cp, n, rows, cols)
				}
			}
		}
		if epi != nil {
			applyEpi(epi, c, n, rowLo, rowHi, colLo, colHi)
		}
		return
	}
	// Packed paths from here on: borrow panel buffers from the pool.
	bufs := gemmPool.Get().(*gemmBufs)
	defer gemmPool.Put(bufs)
	// Gemm/GemmTA fold alpha into the packed A panel and preload C into the
	// accumulators; GemmTB keeps the raw product sum and applies alpha at
	// the store, matching its reference association.
	preload := kind != gemmTB
	packAlpha := alpha
	storeAlpha := float32(1)
	if kind == gemmTB {
		packAlpha, storeAlpha = 1, alpha
	}
	// Direct-B mode (gemmNN/gemmTA with an L2-resident row-major B) skips
	// B panel packing and streams B rows from place.
	directB := kind != gemmTB && k*n <= gemmDirectBMax
	for jc := colLo; jc < colHi; jc += gemmNC {
		nb := min(gemmNC, colHi-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kb := min(gemmKC, k-pc)
			if !directB {
				packB(kind, bufs.b, b, k, n, pc, kb, jc, nb)
			}
			for ic := rowLo; ic < rowHi; ic += gemmMC {
				mb := min(gemmMC, rowHi-ic)
				packA(kind, bufs.a, a, m, k, ic, mb, pc, kb, packAlpha)
				for i := 0; i < mb; i += gemmMR {
					rows := min(gemmMR, mb-i)
					ap := bufs.a[i*kb : i*kb+kb*gemmMR]
					for j := 0; j < nb; j += gemmNR {
						cols := min(gemmNR, nb-j)
						cp := c[(ic+i)*n+jc+j:]
						if directB {
							bs := b[pc*n+jc+j:]
							if rows == gemmMR && cols == gemmNR {
								gemmMicroPreBS(kb, ap, bs, n, cp, n)
							} else {
								microEdgeStridedB(kb, ap, bs, n, cp, n, rows, cols)
							}
							continue
						}
						bp := bufs.b[j*kb : j*kb+kb*gemmNR]
						if rows == gemmMR && cols == gemmNR {
							if preload {
								gemmMicroPre(kb, ap, bp, cp, n)
							} else {
								gemmMicroAcc(kb, ap, bp, cp, n, storeAlpha)
							}
						} else {
							microEdge(kb, ap, bp, cp, n, rows, cols, storeAlpha, preload)
						}
					}
				}
			}
		}
		if epi != nil {
			// All k panels for columns [jc, jc+nb) are done: this slab of
			// the band is final, and still warm.
			applyEpi(epi, c, n, rowLo, rowHi, jc, jc+nb)
		}
	}
}

// microEdgeDirect is the fully direct tile kernel in Go: A lanes at element
// strides (ars, acs), B rows at stride ldb, preload semantics with alpha
// == 1. It also covers partial tiles.
func microEdgeDirect(kb int, a []float32, ars, acs int, b []float32, ldb int, c []float32, ldc, rows, cols int) {
	var acc [gemmMR][gemmNR]float32
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			acc[r][q] = crow[q]
		}
	}
	for p := 0; p < kb; p++ {
		var a0, a1, a2, a3 float32
		base := p * acs
		a0 = a[base]
		if rows > 1 {
			a1 = a[base+ars]
		}
		if rows > 2 {
			a2 = a[base+2*ars]
		}
		if rows > 3 {
			a3 = a[base+3*ars]
		}
		brow := b[p*ldb : p*ldb+cols]
		for q, bv := range brow {
			acc[0][q] += a0 * bv
			acc[1][q] += a1 * bv
			acc[2][q] += a2 * bv
			acc[3][q] += a3 * bv
		}
	}
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			crow[q] = acc[r][q]
		}
	}
}

// microEdgeStridedB is the direct-B tile kernel (preload semantics, alpha in
// ap) reading B rows at stride ldb; it also covers partial tiles.
func microEdgeStridedB(kb int, ap, b []float32, ldb int, c []float32, ldc, rows, cols int) {
	var acc [gemmMR][gemmNR]float32
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			acc[r][q] = crow[q]
		}
	}
	for p := 0; p < kb; p++ {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		ap = ap[gemmMR:]
		brow := b[p*ldb : p*ldb+cols]
		for q, bv := range brow {
			acc[0][q] += a0 * bv
			acc[1][q] += a1 * bv
			acc[2][q] += a2 * bv
			acc[3][q] += a3 * bv
		}
	}
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			crow[q] = acc[r][q]
		}
	}
}

// packA packs rows [i0,i0+mb) × cols [p0,p0+kb) of logical A into
// MR-interleaved tiles, folding alpha in and zero-padding partial tiles.
func packA(kind gemmKind, dst, a []float32, m, k, i0, mb, p0, kb int, alpha float32) {
	for i := 0; i < mb; i += gemmMR {
		rows := min(gemmMR, mb-i)
		d := dst[i*kb : i*kb+kb*gemmMR]
		if kind == gemmTA {
			// A stored k×m: row p of storage holds logical column p.
			for p := 0; p < kb; p++ {
				src := a[(p0+p)*m+i0+i:]
				x := p * gemmMR
				for r := 0; r < gemmMR; r++ {
					if r < rows {
						d[x+r] = alpha * src[r]
					} else {
						d[x+r] = 0
					}
				}
			}
			continue
		}
		// A row-major m×k (gemmNN and gemmTB). Full tiles transpose all
		// four source rows in one pass with sequential destination writes;
		// the per-row strided loop below only handles the m%4 edge.
		if rows == gemmMR {
			s0 := a[(i0+i)*k+p0:]
			s1 := a[(i0+i+1)*k+p0:]
			s2 := a[(i0+i+2)*k+p0:]
			s3 := a[(i0+i+3)*k+p0:]
			if alpha == 1 {
				for p := 0; p < kb; p++ {
					dd := d[p*gemmMR : p*gemmMR+gemmMR]
					dd[0], dd[1], dd[2], dd[3] = s0[p], s1[p], s2[p], s3[p]
				}
			} else {
				for p := 0; p < kb; p++ {
					dd := d[p*gemmMR : p*gemmMR+gemmMR]
					dd[0], dd[1] = alpha*s0[p], alpha*s1[p]
					dd[2], dd[3] = alpha*s2[p], alpha*s3[p]
				}
			}
			continue
		}
		for x := range d {
			d[x] = 0
		}
		for r := 0; r < rows; r++ {
			src := a[(i0+i+r)*k+p0:]
			x := r
			if alpha == 1 {
				for p := 0; p < kb; p++ {
					d[x] = src[p]
					x += gemmMR
				}
			} else {
				for p := 0; p < kb; p++ {
					d[x] = alpha * src[p]
					x += gemmMR
				}
			}
		}
	}
}

// packB packs rows [p0,p0+kb) × cols [j0,j0+nb) of logical B into
// NR-interleaved tiles, zero-padding partial tiles.
func packB(kind gemmKind, dst, b []float32, k, n, p0, kb, j0, nb int) {
	for j := 0; j < nb; j += gemmNR {
		cols := min(gemmNR, nb-j)
		d := dst[j*kb : j*kb+kb*gemmNR]
		if kind == gemmTB {
			// B stored n×k: row j of storage holds logical column j. Full
			// tiles transpose eight storage rows in a single pass with
			// sequential destination writes — the per-column strided loop
			// this replaces walked the whole panel once per column and held
			// GemmTB at ~40% of Gemm's throughput on the small-m shapes.
			// Same values, same panel layout, so bits are unchanged.
			if cols == gemmNR {
				s0 := b[(j0+j)*k+p0:]
				s1 := b[(j0+j+1)*k+p0:]
				s2 := b[(j0+j+2)*k+p0:]
				s3 := b[(j0+j+3)*k+p0:]
				s4 := b[(j0+j+4)*k+p0:]
				s5 := b[(j0+j+5)*k+p0:]
				s6 := b[(j0+j+6)*k+p0:]
				s7 := b[(j0+j+7)*k+p0:]
				for p := 0; p < kb; p++ {
					dd := d[p*gemmNR : p*gemmNR+gemmNR]
					dd[0], dd[1], dd[2], dd[3] = s0[p], s1[p], s2[p], s3[p]
					dd[4], dd[5], dd[6], dd[7] = s4[p], s5[p], s6[p], s7[p]
				}
				continue
			}
			for x := range d {
				d[x] = 0
			}
			for q := 0; q < cols; q++ {
				src := b[(j0+j+q)*k+p0:]
				x := q
				for p := 0; p < kb; p++ {
					d[x] = src[p]
					x += gemmNR
				}
			}
			continue
		}
		// B row-major k×n (gemmNN and gemmTA): full tiles copy 8 sequential
		// floats per k step, so the strided-read cost of a column-major
		// traversal is avoided.
		if cols == gemmNR {
			for p := 0; p < kb; p++ {
				src := b[(p0+p)*n+j0+j:]
				src = src[:gemmNR]
				dd := d[p*gemmNR : p*gemmNR+gemmNR]
				dd[0], dd[1], dd[2], dd[3] = src[0], src[1], src[2], src[3]
				dd[4], dd[5], dd[6], dd[7] = src[4], src[5], src[6], src[7]
			}
			continue
		}
		for p := 0; p < kb; p++ {
			src := b[(p0+p)*n+j0+j:]
			x := p * gemmNR
			for q := 0; q < gemmNR; q++ {
				if q < cols {
					d[x+q] = src[q]
				} else {
					d[x+q] = 0
				}
			}
		}
	}
}

// microGeneric computes one (possibly partial) gemmMR×gemmNR output tile in
// pure Go. The packed panels are zero-padded, so every valid element's
// accumulation order is identical to the assembly kernels' (ascending p,
// one float32 accumulator per element) — the pure-Go and SIMD paths are
// bit-identical.
func microGeneric(kb int, ap, bp []float32, c []float32, ldc, rows, cols int, alpha float32, preload bool) {
	var acc [gemmMR][gemmNR]float32
	if preload {
		for r := 0; r < rows; r++ {
			crow := c[r*ldc:]
			for q := 0; q < cols; q++ {
				acc[r][q] = crow[q]
			}
		}
	}
	for p := 0; p < kb; p++ {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b := bp[:gemmNR]
		ap, bp = ap[gemmMR:], bp[gemmNR:]
		for q, bv := range b {
			acc[0][q] += a0 * bv
			acc[1][q] += a1 * bv
			acc[2][q] += a2 * bv
			acc[3][q] += a3 * bv
		}
	}
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		if preload {
			for q := 0; q < cols; q++ {
				crow[q] = acc[r][q]
			}
			continue
		}
		for q := 0; q < cols; q++ {
			crow[q] += alpha * acc[r][q]
		}
	}
}

// microEdge handles partial tiles at the output's right/bottom edges.
func microEdge(kb int, ap, bp []float32, c []float32, ldc, rows, cols int, alpha float32, preload bool) {
	microGeneric(kb, ap, bp, c, ldc, rows, cols, alpha, preload)
}
