package tensor

// Gemm computes C = alpha*A*B + beta*C for row-major matrices, where A is
// m×k, B is k×n and C is m×n. It is the single hot kernel behind dense
// layers and im2col convolution. The loop order (i,p,j) streams B and C rows
// sequentially, which is the cache-friendly order for row-major data.
func Gemm(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	if beta == 0 {
		for i := range c[:m*n] {
			c[i] = 0
		}
	} else if beta != 1 {
		for i := range c[:m*n] {
			c[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTA computes C = alpha*Aᵀ*B + beta*C where A is k×m (so Aᵀ is m×k),
// B is k×n and C is m×n. Used for weight-gradient accumulation.
func GemmTA(alpha float32, a []float32, k, m int, b []float32, n int, beta float32, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTA buffer too small")
	}
	if beta == 0 {
		for i := range c[:m*n] {
			c[i] = 0
		}
	} else if beta != 1 {
		for i := range c[:m*n] {
			c[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			av *= alpha
			if av == 0 {
				continue
			}
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTB computes C = alpha*A*Bᵀ + beta*C where A is m×k, B is n×k (so Bᵀ
// is k×n) and C is m×n. Used for input-gradient propagation.
func GemmTB(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTB buffer too small")
	}
	if beta == 0 {
		for i := range c[:m*n] {
			c[i] = 0
		}
	} else if beta != 1 {
		for i := range c[:m*n] {
			c[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] += alpha * s
		}
	}
}
