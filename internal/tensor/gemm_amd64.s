// amd64 GEMM micro-kernels: one 4×8 output tile over packed panels.
//
// ap is MR(4)-interleaved (4 floats per k step), bp is NR(8)-interleaved
// (8 floats per k step). Each C element accumulates its products in
// ascending-k order in a single float32 lane, using MULPS/ADDPS (or the
// VEX forms) — never FMA — so the rounding sequence is identical to the
// scalar Go kernels and results are bit-identical across all paths.

#include "textflag.h"

// func gemmMicroPreSSE(kb int, ap, bp, c *float32, ldc int)
// Accumulators preload from C; the result overwrites C.
TEXT ·gemmMicroPreSSE(SB), NOSPLIT, $0-40
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ bp+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS (R9), X2
	MOVUPS 16(R9), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R11), X6
	MOVUPS 16(R11), X7
	TESTQ CX, CX
	JZ    pre_sse_done

pre_sse_loop:
	MOVUPS (SI), X8
	MOVUPS 16(SI), X9

	MOVSS  (DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  pre_sse_loop

pre_sse_done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, (R9)
	MOVUPS X3, 16(R9)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R11)
	MOVUPS X7, 16(R11)
	RET

// func gemmMicroAccSSE(kb int, ap, bp, c *float32, ldc int, alpha float32)
// Accumulators start at zero; C += alpha * acc.
TEXT ·gemmMicroAccSSE(SB), NOSPLIT, $0-44
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ bp+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	TESTQ CX, CX
	JZ    acc_sse_done

acc_sse_loop:
	MOVUPS (SI), X8
	MOVUPS 16(SI), X9

	MOVSS  (DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  acc_sse_loop

acc_sse_done:
	MOVSS  alpha+40(FP), X10
	SHUFPS $0x00, X10, X10

	MULPS  X10, X0
	MOVUPS (DX), X11
	ADDPS  X11, X0
	MOVUPS X0, (DX)
	MULPS  X10, X1
	MOVUPS 16(DX), X11
	ADDPS  X11, X1
	MOVUPS X1, 16(DX)

	MULPS  X10, X2
	MOVUPS (R9), X11
	ADDPS  X11, X2
	MOVUPS X2, (R9)
	MULPS  X10, X3
	MOVUPS 16(R9), X11
	ADDPS  X11, X3
	MOVUPS X3, 16(R9)

	MULPS  X10, X4
	MOVUPS (R10), X11
	ADDPS  X11, X4
	MOVUPS X4, (R10)
	MULPS  X10, X5
	MOVUPS 16(R10), X11
	ADDPS  X11, X5
	MOVUPS X5, 16(R10)

	MULPS  X10, X6
	MOVUPS (R11), X11
	ADDPS  X11, X6
	MOVUPS X6, (R11)
	MULPS  X10, X7
	MOVUPS 16(R11), X11
	ADDPS  X11, X7
	MOVUPS X7, 16(R11)
	RET

// func gemmMicroPreAVX2(kb int, ap, bp, c *float32, ldc int)
TEXT ·gemmMicroPreAVX2(SB), NOSPLIT, $0-40
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ bp+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	VMOVUPS (DX), Y0
	VMOVUPS (R9), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R11), Y3
	TESTQ   CX, CX
	JZ      pre_avx_done

	// Unrolled ×2: pairs first, then an optional tail step.
	MOVQ CX, R12
	SHRQ $1, R12
	JZ   pre_avx_tail

pre_avx_loop:
	VMOVUPS      (SI), Y4
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

	VMOVUPS      32(SI), Y9
	VBROADCASTSS 16(DI), Y10
	VMULPS       Y9, Y10, Y10
	VADDPS       Y10, Y0, Y0
	VBROADCASTSS 20(DI), Y11
	VMULPS       Y9, Y11, Y11
	VADDPS       Y11, Y1, Y1
	VBROADCASTSS 24(DI), Y12
	VMULPS       Y9, Y12, Y12
	VADDPS       Y12, Y2, Y2
	VBROADCASTSS 28(DI), Y13
	VMULPS       Y9, Y13, Y13
	VADDPS       Y13, Y3, Y3

	ADDQ $32, DI
	ADDQ $64, SI
	DECQ R12
	JNZ  pre_avx_loop

pre_avx_tail:
	ANDQ $1, CX
	JZ   pre_avx_done
	VMOVUPS      (SI), Y4
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

pre_avx_done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, (R9)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R11)
	VZEROUPPER
	RET

// func gemmMicroAccAVX2(kb int, ap, bp, c *float32, ldc int, alpha float32)
TEXT ·gemmMicroAccAVX2(SB), NOSPLIT, $0-44
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ bp+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	TESTQ  CX, CX
	JZ     acc_avx_done

	MOVQ CX, R12
	SHRQ $1, R12
	JZ   acc_avx_tail

acc_avx_loop:
	VMOVUPS      (SI), Y4
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

	VMOVUPS      32(SI), Y9
	VBROADCASTSS 16(DI), Y10
	VMULPS       Y9, Y10, Y10
	VADDPS       Y10, Y0, Y0
	VBROADCASTSS 20(DI), Y11
	VMULPS       Y9, Y11, Y11
	VADDPS       Y11, Y1, Y1
	VBROADCASTSS 24(DI), Y12
	VMULPS       Y9, Y12, Y12
	VADDPS       Y12, Y2, Y2
	VBROADCASTSS 28(DI), Y13
	VMULPS       Y9, Y13, Y13
	VADDPS       Y13, Y3, Y3

	ADDQ $32, DI
	ADDQ $64, SI
	DECQ R12
	JNZ  acc_avx_loop

acc_avx_tail:
	ANDQ $1, CX
	JZ   acc_avx_done
	VMOVUPS      (SI), Y4
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

acc_avx_done:
	VBROADCASTSS alpha+40(FP), Y5
	VMULPS       Y5, Y0, Y0
	VMOVUPS      (DX), Y4
	VADDPS       Y4, Y0, Y0
	VMOVUPS      Y0, (DX)
	VMULPS       Y5, Y1, Y1
	VMOVUPS      (R9), Y4
	VADDPS       Y4, Y1, Y1
	VMOVUPS      Y1, (R9)
	VMULPS       Y5, Y2, Y2
	VMOVUPS      (R10), Y4
	VADDPS       Y4, Y2, Y2
	VMOVUPS      Y2, (R10)
	VMULPS       Y5, Y3, Y3
	VMOVUPS      (R11), Y4
	VADDPS       Y4, Y3, Y3
	VMOVUPS      Y3, (R11)
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmMicroPreBSSSE(kb int, ap, b *float32, ldb int, c *float32, ldc int)
// Strided-B variant: reads the 8 tile columns directly from row-major B
// (row stride ldb elements) instead of a packed panel. Accumulators
// preload from C; the result overwrites C.
TEXT ·gemmMicroPreBSSSE(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R13
	SHLQ $2, R13
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS (R9), X2
	MOVUPS 16(R9), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R11), X6
	MOVUPS 16(R11), X7
	TESTQ CX, CX
	JZ    pre_bs_sse_done

pre_bs_sse_loop:
	MOVUPS (SI), X8
	MOVUPS 16(SI), X9
	ADDQ   R13, SI

	MOVSS  (DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, DI
	DECQ CX
	JNZ  pre_bs_sse_loop

pre_bs_sse_done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, (R9)
	MOVUPS X3, 16(R9)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R11)
	MOVUPS X7, 16(R11)
	RET

// func gemmMicroPreBSAVX2(kb int, ap, b *float32, ldb int, c *float32, ldc int)
TEXT ·gemmMicroPreBSAVX2(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R13
	SHLQ $2, R13
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	VMOVUPS (DX), Y0
	VMOVUPS (R9), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R11), Y3
	TESTQ   CX, CX
	JZ      pre_bs_avx_done

	MOVQ CX, R12
	SHRQ $1, R12
	JZ   pre_bs_avx_tail

pre_bs_avx_loop:
	VMOVUPS      (SI), Y4
	ADDQ         R13, SI
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

	VMOVUPS      (SI), Y9
	ADDQ         R13, SI
	VBROADCASTSS 16(DI), Y10
	VMULPS       Y9, Y10, Y10
	VADDPS       Y10, Y0, Y0
	VBROADCASTSS 20(DI), Y11
	VMULPS       Y9, Y11, Y11
	VADDPS       Y11, Y1, Y1
	VBROADCASTSS 24(DI), Y12
	VMULPS       Y9, Y12, Y12
	VADDPS       Y12, Y2, Y2
	VBROADCASTSS 28(DI), Y13
	VMULPS       Y9, Y13, Y13
	VADDPS       Y13, Y3, Y3

	ADDQ $32, DI
	DECQ R12
	JNZ  pre_bs_avx_loop

pre_bs_avx_tail:
	ANDQ $1, CX
	JZ   pre_bs_avx_done
	VMOVUPS      (SI), Y4
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS 4(DI), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS 8(DI), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS 12(DI), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

pre_bs_avx_done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, (R9)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R11)
	VZEROUPPER
	RET

// func gemmMicroPreDirSSE(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)
// Fully direct variant (alpha == 1): the four A lanes are read at row
// stride ars and column stride acs (elements), B rows at stride ldb.
// Accumulators preload from C; the result overwrites C.
TEXT ·gemmMicroPreDirSSE(SB), NOSPLIT, $0-64
	MOVQ kb+0(FP), CX
	MOVQ a+8(FP), DI
	MOVQ ars+16(FP), R14
	SHLQ $2, R14
	MOVQ acs+24(FP), BX
	SHLQ $2, BX
	LEAQ (R14)(R14*2), R15
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), R13
	SHLQ $2, R13
	MOVQ c+48(FP), DX
	MOVQ ldc+56(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS (R9), X2
	MOVUPS 16(R9), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R11), X6
	MOVUPS 16(R11), X7
	TESTQ CX, CX
	JZ    pre_dir_sse_done

pre_dir_sse_loop:
	MOVUPS (SI), X8
	MOVUPS 16(SI), X9
	ADDQ   R13, SI

	MOVSS  (DI), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  (DI)(R14*1), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  (DI)(R14*2), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  (DI)(R15*1), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ BX, DI
	DECQ CX
	JNZ  pre_dir_sse_loop

pre_dir_sse_done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, (R9)
	MOVUPS X3, 16(R9)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R11)
	MOVUPS X7, 16(R11)
	RET

// func gemmMicroPreDirAVX2(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)
TEXT ·gemmMicroPreDirAVX2(SB), NOSPLIT, $0-64
	MOVQ kb+0(FP), CX
	MOVQ a+8(FP), DI
	MOVQ ars+16(FP), R14
	SHLQ $2, R14
	MOVQ acs+24(FP), BX
	SHLQ $2, BX
	LEAQ (R14)(R14*2), R15
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), R13
	SHLQ $2, R13
	MOVQ c+48(FP), DX
	MOVQ ldc+56(FP), R8
	SHLQ $2, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	VMOVUPS (DX), Y0
	VMOVUPS (R9), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R11), Y3
	TESTQ   CX, CX
	JZ      pre_dir_avx_done

pre_dir_avx_loop:
	VMOVUPS      (SI), Y4
	ADDQ         R13, SI
	VBROADCASTSS (DI), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS (DI)(R14*1), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS (DI)(R14*2), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS (DI)(R15*1), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3

	ADDQ BX, DI
	DECQ CX
	JNZ  pre_dir_avx_loop

pre_dir_avx_done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, (R9)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R11)
	VZEROUPPER
	RET
