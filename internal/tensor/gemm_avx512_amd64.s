// amd64 AVX-512F GEMM micro-kernel: one 8×16 output tile per call (fast
// kernel mode only — see DESIGN.md §14).
//
// The 8×8 YMM FMA kernel is load-port bound: nine loads (one B vector,
// eight A broadcasts) feed sixteen 8-wide FMA lanes per k step. Doubling
// the tile width to one ZMM per C row keeps the load count identical —
// the A broadcasts fold into the FMAs as embedded-broadcast memory
// operands — while doubling the flops per step, which moves the kernel to
// the FMA ports' throughput limit. Accumulation order per C element is
// unchanged (ascending k, one float32 lane, fused rounding), so results
// are bit-identical to the 8×8 FMA kernels and remain independent of the
// worker count.

#include "textflag.h"

// func gemmMicroFMAZ16(kb int, ap, b *float32, ldb int, c *float32, ldc int)
// Strided-B variant: reads the 16 tile columns straight from row-major B
// (row stride ldb elements). ap is fmaMR(8)-interleaved with alpha folded
// in; accumulators preload from C and the result overwrites C.
TEXT ·gemmMicroFMAZ16(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R13
	SHLQ $2, R13
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $2, R8
	MOVQ DX, AX
	VMOVUPS (AX), Z0
	ADDQ    R8, AX
	VMOVUPS (AX), Z1
	ADDQ    R8, AX
	VMOVUPS (AX), Z2
	ADDQ    R8, AX
	VMOVUPS (AX), Z3
	ADDQ    R8, AX
	VMOVUPS (AX), Z4
	ADDQ    R8, AX
	VMOVUPS (AX), Z5
	ADDQ    R8, AX
	VMOVUPS (AX), Z6
	ADDQ    R8, AX
	VMOVUPS (AX), Z7
	TESTQ   CX, CX
	JZ      z16_done

	// Unrolled ×2: pairs first, then an optional tail step.
	MOVQ CX, R12
	SHRQ $1, R12
	JZ   z16_tail

z16_loop:
	VMOVUPS          (SI), Z8
	ADDQ             R13, SI
	VFMADD231PS.BCST (DI), Z8, Z0
	VFMADD231PS.BCST 4(DI), Z8, Z1
	VFMADD231PS.BCST 8(DI), Z8, Z2
	VFMADD231PS.BCST 12(DI), Z8, Z3
	VFMADD231PS.BCST 16(DI), Z8, Z4
	VFMADD231PS.BCST 20(DI), Z8, Z5
	VFMADD231PS.BCST 24(DI), Z8, Z6
	VFMADD231PS.BCST 28(DI), Z8, Z7

	VMOVUPS          (SI), Z9
	ADDQ             R13, SI
	VFMADD231PS.BCST 32(DI), Z9, Z0
	VFMADD231PS.BCST 36(DI), Z9, Z1
	VFMADD231PS.BCST 40(DI), Z9, Z2
	VFMADD231PS.BCST 44(DI), Z9, Z3
	VFMADD231PS.BCST 48(DI), Z9, Z4
	VFMADD231PS.BCST 52(DI), Z9, Z5
	VFMADD231PS.BCST 56(DI), Z9, Z6
	VFMADD231PS.BCST 60(DI), Z9, Z7

	ADDQ $64, DI
	DECQ R12
	JNZ  z16_loop

z16_tail:
	ANDQ $1, CX
	JZ   z16_done
	VMOVUPS          (SI), Z8
	VFMADD231PS.BCST (DI), Z8, Z0
	VFMADD231PS.BCST 4(DI), Z8, Z1
	VFMADD231PS.BCST 8(DI), Z8, Z2
	VFMADD231PS.BCST 12(DI), Z8, Z3
	VFMADD231PS.BCST 16(DI), Z8, Z4
	VFMADD231PS.BCST 20(DI), Z8, Z5
	VFMADD231PS.BCST 24(DI), Z8, Z6
	VFMADD231PS.BCST 28(DI), Z8, Z7

z16_done:
	MOVQ    DX, AX
	VMOVUPS Z0, (AX)
	ADDQ    R8, AX
	VMOVUPS Z1, (AX)
	ADDQ    R8, AX
	VMOVUPS Z2, (AX)
	ADDQ    R8, AX
	VMOVUPS Z3, (AX)
	ADDQ    R8, AX
	VMOVUPS Z4, (AX)
	ADDQ    R8, AX
	VMOVUPS Z5, (AX)
	ADDQ    R8, AX
	VMOVUPS Z6, (AX)
	ADDQ    R8, AX
	VMOVUPS Z7, (AX)
	VZEROUPPER
	RET
