package tensor

import "sync"

// Fast-mode blocked GEMM driver (DESIGN.md §14). Same cache-blocking
// scheme as gemmBlocked but built around the 8×8 FMA3 micro-kernels: FMA
// halves the arithmetic ops per element, so the tile doubles its rows to
// keep eight independent accumulator chains in flight. All three kinds use
// preload semantics here (beta applied up front, alpha folded into the
// packed A panel, C preloaded into the accumulators): per-element
// accumulation stays ascending-k in a single float32 lane — deterministic
// run-to-run and independent of the worker count — but the fused
// multiply-add rounds differently from the scalar oracle, within the
// standard forward-error bound asserted by fast_test.go. gemmDispatch only
// routes here while fmaActive(); otherwise Fast mode runs the bit-pinned
// deterministic driver.

const (
	fmaMR  = 8  // fast micro-kernel tile rows
	fmaNR  = 8  // fast micro-kernel tile cols (= gemmNR, so packB is shared)
	fmaNRZ = 16 // AVX-512 tile cols (direct-B path only)
)

type fmaBufs struct {
	a []float32
	b []float32
}

var fmaPool = sync.Pool{New: func() any {
	return &fmaBufs{
		a: make([]float32, (gemmMC+fmaMR)*gemmKC),
		b: make([]float32, (gemmNC+gemmNR)*gemmKC),
	}
}}

func gemmFast(kind gemmKind, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32, epi *Epilogue) {
	scaleC(beta, c[:m*n])
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		if epi != nil {
			applyEpi(epi, c, n, 0, m, 0, n)
		}
		return
	}
	if Parallelism() == 1 {
		gemmFastBand(kind, alpha, a, m, k, b, n, c, 0, m, 0, n, epi)
		return
	}
	if m >= n {
		tiles := (m + fmaMR - 1) / fmaMR
		grain := 1 + parGrainFlops/(2*k*n*fmaMR)
		ParallelFor(tiles, grain, func(lo, hi int) {
			gemmFastBand(kind, alpha, a, m, k, b, n, c, lo*fmaMR, min(hi*fmaMR, m), 0, n, epi)
		})
		return
	}
	tiles := (n + fmaNR - 1) / fmaNR
	grain := 1 + parGrainFlops/(2*k*m*fmaNR)
	ParallelFor(tiles, grain, func(lo, hi int) {
		gemmFastBand(kind, alpha, a, m, k, b, n, c, 0, m, lo*fmaNR, min(hi*fmaNR, n), epi)
	})
}

// gemmFastBand runs the FMA blocked kernel over the output band
// C[rowLo:rowHi, colLo:colHi]. beta has already been applied.
func gemmFastBand(kind gemmKind, alpha float32, a []float32, m, k int, b []float32, n int, c []float32, rowLo, rowHi, colLo, colHi int, epi *Epilogue) {
	bufs := fmaPool.Get().(*fmaBufs)
	defer fmaPool.Put(bufs)
	// The A panel is always packed (the 8-deep broadcast column wants
	// contiguity and alpha folded in); B streams from place when it is
	// L2-resident row-major, like the deterministic driver's direct-B mode.
	directB := kind != gemmTB && k*n <= gemmDirectBMax
	zWide := fmaZActive()
	for jc := colLo; jc < colHi; jc += gemmNC {
		nb := min(gemmNC, colHi-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kb := min(gemmKC, k-pc)
			if !directB {
				packB(kind, bufs.b, b, k, n, pc, kb, jc, nb)
			}
			for ic := rowLo; ic < rowHi; ic += gemmMC {
				mb := min(gemmMC, rowHi-ic)
				packAFast(kind, bufs.a, a, m, k, ic, mb, pc, kb, alpha)
				for i := 0; i < mb; i += fmaMR {
					rows := min(fmaMR, mb-i)
					ap := bufs.a[i*kb : i*kb+kb*fmaMR]
					if directB {
						// The ZMM kernel only widens the tile; it runs the
						// same per-element FMA chain, so mixing 16- and
						// 8-wide tiles never changes bits.
						for j := 0; j < nb; {
							cols := nb - j
							cp := c[(ic+i)*n+jc+j:]
							bs := b[pc*n+jc+j:]
							switch {
							case rows == fmaMR && cols >= fmaNRZ && zWide:
								gemmMicroFMAZ(kb, ap, bs, n, cp, n)
								j += fmaNRZ
							case rows == fmaMR && cols >= fmaNR:
								gemmMicroFMABS(kb, ap, bs, n, cp, n)
								j += fmaNR
							default:
								cw := min(cols, fmaNR)
								microEdgeFast(kb, ap, nil, bs, n, cp, n, rows, cw)
								j += cw
							}
						}
						continue
					}
					for j := 0; j < nb; j += fmaNR {
						cols := min(fmaNR, nb-j)
						cp := c[(ic+i)*n+jc+j:]
						bp := bufs.b[j*kb : j*kb+kb*gemmNR]
						if rows == fmaMR && cols == fmaNR {
							gemmMicroFMAPack(kb, ap, bp, cp, n)
						} else {
							microEdgeFast(kb, ap, bp, nil, 0, cp, n, rows, cols)
						}
					}
				}
			}
		}
		if epi != nil {
			applyEpi(epi, c, n, rowLo, rowHi, jc, jc+nb)
		}
	}
}

// packAFast packs rows [i0,i0+mb) × cols [p0,p0+kb) of logical A into
// fmaMR-interleaved tiles, folding alpha in and zero-padding partial tiles.
func packAFast(kind gemmKind, dst, a []float32, m, k, i0, mb, p0, kb int, alpha float32) {
	for i := 0; i < mb; i += fmaMR {
		rows := min(fmaMR, mb-i)
		d := dst[i*kb : i*kb+kb*fmaMR]
		if kind == gemmTA {
			// A stored k×m: row p of storage holds logical column p, so a
			// full tile is a straight scaled copy of 8 contiguous floats.
			if rows == fmaMR {
				for p := 0; p < kb; p++ {
					src := a[(p0+p)*m+i0+i:]
					dd := d[p*fmaMR : p*fmaMR+fmaMR]
					dd[0], dd[1] = alpha*src[0], alpha*src[1]
					dd[2], dd[3] = alpha*src[2], alpha*src[3]
					dd[4], dd[5] = alpha*src[4], alpha*src[5]
					dd[6], dd[7] = alpha*src[6], alpha*src[7]
				}
				continue
			}
			for p := 0; p < kb; p++ {
				src := a[(p0+p)*m+i0+i:]
				x := p * fmaMR
				for r := 0; r < fmaMR; r++ {
					if r < rows {
						d[x+r] = alpha * src[r]
					} else {
						d[x+r] = 0
					}
				}
			}
			continue
		}
		// A row-major m×k (gemmNN and gemmTB): full tiles transpose all
		// eight source rows in one pass. The AVX2 8×8 transpose covers
		// kb&^7 columns (bit-identical to the scalar pack — the alpha
		// multiply is the same elementwise IEEE operation); the scalar
		// loop finishes the remainder.
		if rows == fmaMR {
			done := packATrASM(d, a, (i0+i)*k+p0, k, kb, alpha)
			if done == kb {
				continue
			}
			s0 := a[(i0+i)*k+p0+done:]
			s1 := a[(i0+i+1)*k+p0+done:]
			s2 := a[(i0+i+2)*k+p0+done:]
			s3 := a[(i0+i+3)*k+p0+done:]
			s4 := a[(i0+i+4)*k+p0+done:]
			s5 := a[(i0+i+5)*k+p0+done:]
			s6 := a[(i0+i+6)*k+p0+done:]
			s7 := a[(i0+i+7)*k+p0+done:]
			rest := d[done*fmaMR:]
			if alpha == 1 {
				for p := 0; p < kb-done; p++ {
					dd := rest[p*fmaMR : p*fmaMR+fmaMR]
					dd[0], dd[1], dd[2], dd[3] = s0[p], s1[p], s2[p], s3[p]
					dd[4], dd[5], dd[6], dd[7] = s4[p], s5[p], s6[p], s7[p]
				}
			} else {
				for p := 0; p < kb-done; p++ {
					dd := rest[p*fmaMR : p*fmaMR+fmaMR]
					dd[0], dd[1] = alpha*s0[p], alpha*s1[p]
					dd[2], dd[3] = alpha*s2[p], alpha*s3[p]
					dd[4], dd[5] = alpha*s4[p], alpha*s5[p]
					dd[6], dd[7] = alpha*s6[p], alpha*s7[p]
				}
			}
			continue
		}
		for x := range d {
			d[x] = 0
		}
		for r := 0; r < rows; r++ {
			src := a[(i0+i+r)*k+p0:]
			x := r
			for p := 0; p < kb; p++ {
				d[x] = alpha * src[p]
				x += fmaMR
			}
		}
	}
}

// microEdgeFast is the Go edge kernel for partial fast-mode tiles: ap is
// fmaMR-interleaved; B is either a packed NR-interleaved panel (bp) or
// row-major rows at stride ldb (bs). Plain MUL+ADD — edge elements round
// like the deterministic kernels, interior ones like FMA; both are inside
// the fast-mode error bound.
func microEdgeFast(kb int, ap, bp, bs []float32, ldb int, c []float32, ldc, rows, cols int) {
	var acc [fmaMR][fmaNR]float32
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			acc[r][q] = crow[q]
		}
	}
	for p := 0; p < kb; p++ {
		var brow []float32
		if bp != nil {
			brow = bp[p*gemmNR : p*gemmNR+cols]
		} else {
			brow = bs[p*ldb : p*ldb+cols]
		}
		av := ap[p*fmaMR : p*fmaMR+rows]
		for r, ar := range av {
			arow := &acc[r]
			for q, bv := range brow {
				arow[q] += ar * bv
			}
		}
	}
	for r := 0; r < rows; r++ {
		crow := c[r*ldc:]
		for q := 0; q < cols; q++ {
			crow[q] = acc[r][q]
		}
	}
}
