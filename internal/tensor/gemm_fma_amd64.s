// amd64 FMA3 GEMM micro-kernels: one 8×8 output tile per call (fast kernel
// mode only — see DESIGN.md §14).
//
// ap is fmaMR(8)-interleaved (8 floats per k step, alpha folded in by the
// packer); B is either a packed NR(8)-interleaved panel (Pack variant) or
// row-major rows at stride ldb (BS variant). Each C element still
// accumulates its products in ascending-k order in a single float32 lane —
// results are deterministic run-to-run and independent of the worker count
// — but VFMADD231PS fuses the multiply and add into one rounding, so bits
// differ from the scalar oracle within standard forward-error bounds. The
// 8-row tile exists because FMA halves the arithmetic ops per element:
// eight independent accumulator chains are needed to keep both FMA ports
// busy, where the deterministic 4×8 MUL+ADD kernel saturates them with four.

#include "textflag.h"

// func gemmMicroFMAPack8(kb int, ap, bp, c *float32, ldc int)
// Packed-B variant. Accumulators preload from C; the result overwrites C.
TEXT ·gemmMicroFMAPack8(SB), NOSPLIT, $0-40
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ bp+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	MOVQ DX, AX
	VMOVUPS (AX), Y0
	ADDQ    R8, AX
	VMOVUPS (AX), Y1
	ADDQ    R8, AX
	VMOVUPS (AX), Y2
	ADDQ    R8, AX
	VMOVUPS (AX), Y3
	ADDQ    R8, AX
	VMOVUPS (AX), Y4
	ADDQ    R8, AX
	VMOVUPS (AX), Y5
	ADDQ    R8, AX
	VMOVUPS (AX), Y6
	ADDQ    R8, AX
	VMOVUPS (AX), Y7
	TESTQ   CX, CX
	JZ      fma_pack_done

	// Unrolled ×2: pairs first, then an optional tail step.
	MOVQ CX, R12
	SHRQ $1, R12
	JZ   fma_pack_tail

fma_pack_loop:
	VMOVUPS      (SI), Y8
	VBROADCASTSS (DI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DI), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DI), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DI), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DI), Y12
	VFMADD231PS  Y8, Y12, Y7

	VMOVUPS      32(SI), Y13
	VBROADCASTSS 32(DI), Y9
	VFMADD231PS  Y13, Y9, Y0
	VBROADCASTSS 36(DI), Y10
	VFMADD231PS  Y13, Y10, Y1
	VBROADCASTSS 40(DI), Y11
	VFMADD231PS  Y13, Y11, Y2
	VBROADCASTSS 44(DI), Y12
	VFMADD231PS  Y13, Y12, Y3
	VBROADCASTSS 48(DI), Y9
	VFMADD231PS  Y13, Y9, Y4
	VBROADCASTSS 52(DI), Y10
	VFMADD231PS  Y13, Y10, Y5
	VBROADCASTSS 56(DI), Y11
	VFMADD231PS  Y13, Y11, Y6
	VBROADCASTSS 60(DI), Y12
	VFMADD231PS  Y13, Y12, Y7

	ADDQ $64, DI
	ADDQ $64, SI
	DECQ R12
	JNZ  fma_pack_loop

fma_pack_tail:
	ANDQ $1, CX
	JZ   fma_pack_done
	VMOVUPS      (SI), Y8
	VBROADCASTSS (DI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DI), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DI), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DI), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DI), Y12
	VFMADD231PS  Y8, Y12, Y7

fma_pack_done:
	MOVQ    DX, AX
	VMOVUPS Y0, (AX)
	ADDQ    R8, AX
	VMOVUPS Y1, (AX)
	ADDQ    R8, AX
	VMOVUPS Y2, (AX)
	ADDQ    R8, AX
	VMOVUPS Y3, (AX)
	ADDQ    R8, AX
	VMOVUPS Y4, (AX)
	ADDQ    R8, AX
	VMOVUPS Y5, (AX)
	ADDQ    R8, AX
	VMOVUPS Y6, (AX)
	ADDQ    R8, AX
	VMOVUPS Y7, (AX)
	VZEROUPPER
	RET

// func gemmMicroFMABS8(kb int, ap, b *float32, ldb int, c *float32, ldc int)
// Strided-B variant: reads the 8 tile columns straight from row-major B
// (row stride ldb elements), skipping the B pack for L2-resident operands.
TEXT ·gemmMicroFMABS8(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+8(FP), DI
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R13
	SHLQ $2, R13
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $2, R8
	MOVQ DX, AX
	VMOVUPS (AX), Y0
	ADDQ    R8, AX
	VMOVUPS (AX), Y1
	ADDQ    R8, AX
	VMOVUPS (AX), Y2
	ADDQ    R8, AX
	VMOVUPS (AX), Y3
	ADDQ    R8, AX
	VMOVUPS (AX), Y4
	ADDQ    R8, AX
	VMOVUPS (AX), Y5
	ADDQ    R8, AX
	VMOVUPS (AX), Y6
	ADDQ    R8, AX
	VMOVUPS (AX), Y7
	TESTQ   CX, CX
	JZ      fma_bs_done

	MOVQ CX, R12
	SHRQ $1, R12
	JZ   fma_bs_tail

fma_bs_loop:
	VMOVUPS      (SI), Y8
	ADDQ         R13, SI
	VBROADCASTSS (DI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DI), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DI), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DI), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DI), Y12
	VFMADD231PS  Y8, Y12, Y7

	VMOVUPS      (SI), Y13
	ADDQ         R13, SI
	VBROADCASTSS 32(DI), Y9
	VFMADD231PS  Y13, Y9, Y0
	VBROADCASTSS 36(DI), Y10
	VFMADD231PS  Y13, Y10, Y1
	VBROADCASTSS 40(DI), Y11
	VFMADD231PS  Y13, Y11, Y2
	VBROADCASTSS 44(DI), Y12
	VFMADD231PS  Y13, Y12, Y3
	VBROADCASTSS 48(DI), Y9
	VFMADD231PS  Y13, Y9, Y4
	VBROADCASTSS 52(DI), Y10
	VFMADD231PS  Y13, Y10, Y5
	VBROADCASTSS 56(DI), Y11
	VFMADD231PS  Y13, Y11, Y6
	VBROADCASTSS 60(DI), Y12
	VFMADD231PS  Y13, Y12, Y7

	ADDQ $64, DI
	DECQ R12
	JNZ  fma_bs_loop

fma_bs_tail:
	ANDQ $1, CX
	JZ   fma_bs_done
	VMOVUPS      (SI), Y8
	VBROADCASTSS (DI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DI), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DI), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DI), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DI), Y12
	VFMADD231PS  Y8, Y12, Y7

fma_bs_done:
	MOVQ    DX, AX
	VMOVUPS Y0, (AX)
	ADDQ    R8, AX
	VMOVUPS Y1, (AX)
	ADDQ    R8, AX
	VMOVUPS Y2, (AX)
	ADDQ    R8, AX
	VMOVUPS Y3, (AX)
	ADDQ    R8, AX
	VMOVUPS Y4, (AX)
	ADDQ    R8, AX
	VMOVUPS Y5, (AX)
	ADDQ    R8, AX
	VMOVUPS Y6, (AX)
	ADDQ    R8, AX
	VMOVUPS Y7, (AX)
	VZEROUPPER
	RET
