package tensor

import "math"

// Int8 inference kernels (DESIGN.md §14). The quantized forward path
// stores weights as int8 with a symmetric per-output-channel scale and
// quantizes activations per tensor at run time; accumulation is exact
// int32, so results are deterministic regardless of blocking or worker
// count. These kernels trade a little accuracy (gated by the serving
// plane's top-1 agreement check) for a 4× smaller weight working set.

// QuantizeSym quantizes src into dst with one symmetric scale: dst[i] =
// round(src[i]/scale) clamped to [-127, 127], scale = maxAbs(src)/127. It
// returns the scale (1 when src is all zero, so dequantization is exact).
func QuantizeSym(src []float32, dst []int8) float32 {
	if len(dst) < len(src) {
		panic("tensor: QuantizeSym dst too small")
	}
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 || math.IsNaN(float64(maxAbs)) || math.IsInf(float64(maxAbs), 0) {
		for i := range src {
			dst[i] = 0
		}
		return 1
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range src {
		q := math.Round(float64(v * inv))
		switch {
		case q > 127:
			q = 127
		case q < -127:
			q = -127
		case math.IsNaN(q):
			q = 0
		}
		dst[i] = int8(q)
	}
	return scale
}

// QuantizeRows quantizes each of the m rows of a row-major m×k matrix
// independently (symmetric per-row scale — per-output-channel for OIHW
// conv weights and Out×In dense weights), writing the m scales to scales.
func QuantizeRows(src []float32, m, k int, dst []int8, scales []float32) {
	if len(src) < m*k || len(dst) < m*k || len(scales) < m {
		panic("tensor: QuantizeRows buffer too small")
	}
	for i := 0; i < m; i++ {
		scales[i] = QuantizeSym(src[i*k:(i+1)*k], dst[i*k:(i+1)*k])
	}
}

// GemmInt8 computes C(int32, m×n) = A(int8, m×k) · B(int8, k×n), all
// row-major. Integer accumulation is exact, so any evaluation order gives
// identical results; the row-axpy form keeps both streams sequential.
func GemmInt8(a []int8, m, k int, b []int8, n int, c []int32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmInt8 buffer too small")
	}
	grain := 1 + parGrainFlops/(1+2*k*n)
	ParallelFor(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for x := range crow {
				crow[x] = 0
			}
			for p, av := range arow {
				if av == 0 {
					continue
				}
				av32 := int32(av)
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av32 * int32(bv)
				}
			}
		}
	})
}

// GemmInt8TB computes C(int32, m×n) = A(int8, m×k) · B(int8, n×k)ᵀ — the
// dense-layer shape, where both operands are row-contiguous dot products.
func GemmInt8TB(a []int8, m, k int, b []int8, n int, c []int32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmInt8TB buffer too small")
	}
	grain := 1 + parGrainFlops/(1+2*k*n)
	ParallelFor(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var s int32
				for p, av := range arow {
					s += int32(av) * int32(brow[p])
				}
				crow[j] = s
			}
		}
	})
}
