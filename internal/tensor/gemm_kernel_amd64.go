//go:build amd64

package tensor

import "os"

// amd64 micro-kernel dispatch. Two assembly kernels cover the full 4×8
// tile: an AVX2 one (one YMM per C row) used when the CPU supports it, and
// an SSE2 one (two XMM per C row) that every amd64 CPU can run. Both use
// vector MUL then ADD — never FMA — so each lane performs exactly the same
// rounding sequence as the scalar Go code, keeping the SIMD and generic
// paths bit-identical (asserted by TestGemmSIMDMatchesGeneric).
//
// Set CROSSBOW_NOSIMD=1 to force the pure-Go kernels.

var (
	gemmUseASM  = true
	gemmUseAVX2 bool
)

func init() {
	if os.Getenv("CROSSBOW_NOSIMD") != "" {
		gemmUseASM = false
		return
	}
	gemmUseAVX2 = detectAVX2()
}

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state.
	if eax, _ := xgetbvAsm(); eax&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0
}

//go:noescape
func gemmMicroPreSSE(kb int, ap, bp, c *float32, ldc int)

//go:noescape
func gemmMicroAccSSE(kb int, ap, bp, c *float32, ldc int, alpha float32)

//go:noescape
func gemmMicroPreAVX2(kb int, ap, bp, c *float32, ldc int)

//go:noescape
func gemmMicroAccAVX2(kb int, ap, bp, c *float32, ldc int, alpha float32)

//go:noescape
func gemmMicroPreBSSSE(kb int, ap, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreBSAVX2(kb int, ap, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreDirSSE(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreDirAVX2(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// setGemmASM is a test hook: false forces the pure-Go micro-kernels.
// It returns the previous setting.
func setGemmASM(on bool) bool {
	prev := gemmUseASM
	gemmUseASM = on
	return prev
}

// setGemmAVX2 is a test hook: false forces the SSE2 kernels even on
// AVX2-capable CPUs, so both assembly paths are exercised in CI. It
// returns the previous setting.
func setGemmAVX2(on bool) bool {
	prev := gemmUseAVX2
	gemmUseAVX2 = on && detectAVX2()
	return prev
}

// gemmMicroPre computes one full 4×8 tile with accumulators preloaded from
// C (alpha already folded into ap), overwriting C.
func gemmMicroPre(kb int, ap, bp, c []float32, ldc int) {
	if !gemmUseASM {
		microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, 1, true)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreAVX2(kb, &ap[0], &bp[0], &c[0], ldc)
	} else {
		gemmMicroPreSSE(kb, &ap[0], &bp[0], &c[0], ldc)
	}
}

// gemmMicroPreBS is gemmMicroPre reading B rows directly at stride ldb
// (no packed panel).
func gemmMicroPreBS(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	if !gemmUseASM {
		microEdgeStridedB(kb, ap, b, ldb, c, ldc, gemmMR, gemmNR)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreBSAVX2(kb, &ap[0], &b[0], ldb, &c[0], ldc)
	} else {
		gemmMicroPreBSSSE(kb, &ap[0], &b[0], ldb, &c[0], ldc)
	}
}

// gemmMicroPreDir is the fully direct tile kernel (alpha == 1): A read at
// row/column element strides ars/acs, B rows at stride ldb, no packing.
func gemmMicroPreDir(kb int, a []float32, ars, acs int, b []float32, ldb int, c []float32, ldc int) {
	if !gemmUseASM {
		microEdgeDirect(kb, a, ars, acs, b, ldb, c, ldc, gemmMR, gemmNR)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreDirAVX2(kb, &a[0], ars, acs, &b[0], ldb, &c[0], ldc)
	} else {
		gemmMicroPreDirSSE(kb, &a[0], ars, acs, &b[0], ldb, &c[0], ldc)
	}
}

// gemmMicroAcc computes one full 4×8 tile from zero and applies
// C += alpha * acc (GemmTB's association).
func gemmMicroAcc(kb int, ap, bp, c []float32, ldc int, alpha float32) {
	if !gemmUseASM {
		microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, alpha, false)
		return
	}
	if gemmUseAVX2 {
		gemmMicroAccAVX2(kb, &ap[0], &bp[0], &c[0], ldc, alpha)
	} else {
		gemmMicroAccSSE(kb, &ap[0], &bp[0], &c[0], ldc, alpha)
	}
}
