//go:build amd64

package tensor

import "os"

// amd64 micro-kernel dispatch. Two assembly kernels cover the full 4×8
// tile: an AVX2 one (one YMM per C row) used when the CPU supports it, and
// an SSE2 one (two XMM per C row) that every amd64 CPU can run. Both use
// vector MUL then ADD — never FMA — so each lane performs exactly the same
// rounding sequence as the scalar Go code, keeping the SIMD and generic
// paths bit-identical (asserted by TestGemmSIMDMatchesGeneric).
//
// Set CROSSBOW_NOSIMD=1 to force the pure-Go kernels.
//
// The opt-in Fast kernel mode additionally dispatches 8×8 FMA3 micro-
// kernels (gemm_fma_amd64.s), gated at runtime on CPUID reporting FMA3
// alongside the AVX2/OSXSAVE checks — never on build tags alone. Set
// CROSSBOW_NOFMA=1 to force Fast mode onto the deterministic kernels so
// any runner can exercise the fallback path.

var (
	gemmUseASM  = true
	gemmUseAVX2 bool
	gemmUseFMA  bool
	gemmUseZ    bool
)

func init() {
	if os.Getenv("CROSSBOW_NOSIMD") != "" {
		gemmUseASM = false
		return
	}
	gemmUseAVX2 = detectAVX2()
	if os.Getenv("CROSSBOW_NOFMA") == "" {
		gemmUseFMA = gemmUseAVX2 && detectFMA()
	}
	if os.Getenv("CROSSBOW_NOAVX512") == "" {
		gemmUseZ = gemmUseFMA && detectAVX512()
	}
}

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state.
	if eax, _ := xgetbvAsm(); eax&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0
}

// detectFMA reports FMA3 support (CPUID leaf 1 ECX bit 12). The OS-state
// prerequisites (OSXSAVE, XGETBV YMM enable) are detectAVX2's checks, so
// callers must AND the two.
func detectFMA() bool {
	_, _, c1, _ := cpuidAsm(1, 0)
	return c1&(1<<12) != 0
}

// detectAVX512 reports AVX-512F support: CPUID leaf 7 EBX bit 16 plus the
// OS saving opmask and full-ZMM state (XCR0 bits 5..7) alongside XMM/YMM.
func detectAVX512() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	if c1&(1<<27) == 0 { // OSXSAVE
		return false
	}
	if eax, _ := xgetbvAsm(); eax&0xE6 != 0xE6 {
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<16) != 0
}

// fmaActive reports whether Fast-mode GEMM will actually run the FMA3
// micro-kernels right now (CPU capable, not disabled by env or test hooks).
func fmaActive() bool { return gemmUseASM && gemmUseFMA }

// fmaZActive reports whether the 8×16 AVX-512 kernel is dispatched on top
// of the FMA path. Purely a width upgrade: bits are identical either way.
func fmaZActive() bool { return gemmUseASM && gemmUseFMA && gemmUseZ }

//go:noescape
func gemmMicroPreSSE(kb int, ap, bp, c *float32, ldc int)

//go:noescape
func gemmMicroAccSSE(kb int, ap, bp, c *float32, ldc int, alpha float32)

//go:noescape
func gemmMicroPreAVX2(kb int, ap, bp, c *float32, ldc int)

//go:noescape
func gemmMicroAccAVX2(kb int, ap, bp, c *float32, ldc int, alpha float32)

//go:noescape
func gemmMicroPreBSSSE(kb int, ap, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreBSAVX2(kb int, ap, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreDirSSE(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroPreDirAVX2(kb int, a *float32, ars, acs int, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroFMAPack8(kb int, ap, bp, c *float32, ldc int)

//go:noescape
func gemmMicroFMABS8(kb int, ap, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func gemmMicroFMAZ16(kb int, ap, b *float32, ldb int, c *float32, ldc int)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// setGemmASM is a test hook: false forces the pure-Go micro-kernels.
// It returns the previous setting.
func setGemmASM(on bool) bool {
	prev := gemmUseASM
	gemmUseASM = on
	return prev
}

// setGemmAVX2 is a test hook: false forces the SSE2 kernels even on
// AVX2-capable CPUs, so both assembly paths are exercised in CI. It
// returns the previous setting.
func setGemmAVX2(on bool) bool {
	prev := gemmUseAVX2
	gemmUseAVX2 = on && detectAVX2()
	return prev
}

// setGemmFMA is a test hook: false forces Fast mode onto the deterministic
// kernels (the CROSSBOW_NOFMA behaviour); true re-enables FMA only if the
// CPU actually has it. It returns the previous setting.
func setGemmFMA(on bool) bool {
	prev := gemmUseFMA
	gemmUseFMA = on && detectAVX2() && detectFMA()
	return prev
}

// setGemmZ is a test hook: false forces the fast path onto the 8×8 YMM
// kernels even on AVX-512 CPUs (the CROSSBOW_NOAVX512 behaviour). It
// returns the previous setting.
func setGemmZ(on bool) bool {
	prev := gemmUseZ
	gemmUseZ = on && gemmUseFMA && detectAVX512()
	return prev
}

// gemmMicroFMAPack computes one full 8×8 tile over packed A/B panels with
// FMA, accumulators preloaded from C (alpha already folded into ap).
func gemmMicroFMAPack(kb int, ap, bp, c []float32, ldc int) {
	gemmMicroFMAPack8(kb, &ap[0], &bp[0], &c[0], ldc)
}

// gemmMicroFMABS is gemmMicroFMAPack reading B rows directly at stride ldb.
func gemmMicroFMABS(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	gemmMicroFMABS8(kb, &ap[0], &b[0], ldb, &c[0], ldc)
}

// gemmMicroFMAZ is the 8×16 AVX-512 variant of gemmMicroFMABS.
func gemmMicroFMAZ(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	gemmMicroFMAZ16(kb, &ap[0], &b[0], ldb, &c[0], ldc)
}

// gemmMicroPre computes one full 4×8 tile with accumulators preloaded from
// C (alpha already folded into ap), overwriting C.
func gemmMicroPre(kb int, ap, bp, c []float32, ldc int) {
	if !gemmUseASM {
		microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, 1, true)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreAVX2(kb, &ap[0], &bp[0], &c[0], ldc)
	} else {
		gemmMicroPreSSE(kb, &ap[0], &bp[0], &c[0], ldc)
	}
}

// gemmMicroPreBS is gemmMicroPre reading B rows directly at stride ldb
// (no packed panel).
func gemmMicroPreBS(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	if !gemmUseASM {
		microEdgeStridedB(kb, ap, b, ldb, c, ldc, gemmMR, gemmNR)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreBSAVX2(kb, &ap[0], &b[0], ldb, &c[0], ldc)
	} else {
		gemmMicroPreBSSSE(kb, &ap[0], &b[0], ldb, &c[0], ldc)
	}
}

// gemmMicroPreDir is the fully direct tile kernel (alpha == 1): A read at
// row/column element strides ars/acs, B rows at stride ldb, no packing.
func gemmMicroPreDir(kb int, a []float32, ars, acs int, b []float32, ldb int, c []float32, ldc int) {
	if !gemmUseASM {
		microEdgeDirect(kb, a, ars, acs, b, ldb, c, ldc, gemmMR, gemmNR)
		return
	}
	if gemmUseAVX2 {
		gemmMicroPreDirAVX2(kb, &a[0], ars, acs, &b[0], ldb, &c[0], ldc)
	} else {
		gemmMicroPreDirSSE(kb, &a[0], ars, acs, &b[0], ldb, &c[0], ldc)
	}
}

// gemmMicroAcc computes one full 4×8 tile from zero and applies
// C += alpha * acc (GemmTB's association).
func gemmMicroAcc(kb int, ap, bp, c []float32, ldc int, alpha float32) {
	if !gemmUseASM {
		microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, alpha, false)
		return
	}
	if gemmUseAVX2 {
		gemmMicroAccAVX2(kb, &ap[0], &bp[0], &c[0], ldc, alpha)
	} else {
		gemmMicroAccSSE(kb, &ap[0], &bp[0], &c[0], ldc, alpha)
	}
}
