//go:build !amd64

package tensor

// Portable micro-kernel fallback: same tile shape, same per-element
// accumulation order, so results are bit-identical to the amd64 assembly
// kernels.

func gemmMicroPre(kb int, ap, bp, c []float32, ldc int) {
	microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, 1, true)
}

func gemmMicroAcc(kb int, ap, bp, c []float32, ldc int, alpha float32) {
	microGeneric(kb, ap, bp, c, ldc, gemmMR, gemmNR, alpha, false)
}

func gemmMicroPreBS(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	microEdgeStridedB(kb, ap, b, ldb, c, ldc, gemmMR, gemmNR)
}

func gemmMicroPreDir(kb int, a []float32, ars, acs int, b []float32, ldb int, c []float32, ldc int) {
	microEdgeDirect(kb, a, ars, acs, b, ldb, c, ldc, gemmMR, gemmNR)
}

// setGemmASM is a no-op on architectures without assembly kernels.
func setGemmASM(on bool) bool { return false }

// setGemmAVX2 is a no-op on architectures without assembly kernels.
func setGemmAVX2(on bool) bool { return false }

// setGemmFMA is a no-op on architectures without assembly kernels.
func setGemmFMA(on bool) bool { return false }

// setGemmZ is a no-op on architectures without assembly kernels.
func setGemmZ(on bool) bool { return false }

// fmaActive: no FMA micro-kernels off amd64 — Fast mode computes with the
// Deterministic kernels, bit-for-bit.
func fmaActive() bool { return false }

func fmaZActive() bool { return false }

// The FMA micro-kernels are never dispatched when fmaActive is false;
// these stubs only satisfy the linker.
func gemmMicroFMAPack(kb int, ap, bp, c []float32, ldc int) {
	panic("tensor: FMA kernel dispatched without FMA support")
}

func gemmMicroFMABS(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	panic("tensor: FMA kernel dispatched without FMA support")
}

func gemmMicroFMAZ(kb int, ap, b []float32, ldb int, c []float32, ldc int) {
	panic("tensor: FMA kernel dispatched without FMA support")
}
