package tensor

// Reference GEMM kernels: the original scalar, single-threaded loops the
// blocked kernels in gemm.go replaced. They are kept as the in-package
// oracle for the property tests in blocked_test.go, which pin down exactly
// where the fast kernels are bit-identical to these and where summation
// regrouping is unavoidable (see DESIGN.md §8).
//
// One deliberate change from the seed kernels: the seed's `if av == 0
// { continue }` zero-skip in Gemm/GemmTA is dropped, so the oracle matches
// the blocked kernels' include-zero-terms semantics. For finite data the
// two are bit-identical (x + 0·b == x); they differ only when a zero in A
// meets ±Inf/NaN in B (seed: C untouched; now: NaN propagates, which is
// the IEEE answer) or on the sign of exact -0 sums.

// gemmRef computes C = alpha*A*B + beta*C with the (i,p,j) axpy loop order.
func gemmRef(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: gemmRef buffer too small")
	}
	scaleC(beta, c[:m*n])
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTARef computes C = alpha*Aᵀ*B + beta*C where A is stored k×m.
func gemmTARef(alpha float32, a []float32, k, m int, b []float32, n int, beta float32, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: gemmTARef buffer too small")
	}
	scaleC(beta, c[:m*n])
	if alpha == 0 {
		return
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			av *= alpha
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTBRef computes C = alpha*A*Bᵀ + beta*C where B is stored n×k.
func gemmTBRef(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: gemmTBRef buffer too small")
	}
	scaleC(beta, c[:m*n])
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] += alpha * s
		}
	}
}
