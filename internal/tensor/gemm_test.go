package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference implementation all Gemm variants are checked
// against.
func naiveGemm(alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
	copy(c, out)
}

func randSlice(r *RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.NormFloat64())
	}
	return s
}

func sliceClose(t *testing.T, got, want []float32, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > tol {
			t.Fatalf("element %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	r := NewRNG(17)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 2, 9}, {16, 16, 16}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		c1 := randSlice(r, m*n)
		c2 := append([]float32(nil), c1...)
		Gemm(1.3, a, m, k, b, n, 0.7, c1)
		naiveGemm(1.3, a, m, k, b, n, 0.7, c2)
		sliceClose(t, c1, c2, 1e-4)
	}
}

func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{float32(math.NaN())}
	Gemm(1, a, 1, 2, b, 1, 0, c)
	if c[0] != 11 {
		t.Fatalf("got %v, want 11", c[0])
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	c := []float32{2, 4}
	Gemm(0, []float32{1, 1}, 2, 1, []float32{1}, 1, 0.5, c)
	if c[0] != 1 || c[1] != 2 {
		t.Fatalf("got %v", c)
	}
}

func TestGemmTAMatchesTransposedNaive(t *testing.T) {
	r := NewRNG(23)
	m, k, n := 4, 6, 5
	// a is stored k×m; logical operand is aᵀ (m×k).
	a := randSlice(r, k*m)
	b := randSlice(r, k*n)
	c1 := make([]float32, m*n)
	GemmTA(1, a, k, m, b, n, 0, c1)

	at := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			at[i*k+p] = a[p*m+i]
		}
	}
	c2 := make([]float32, m*n)
	naiveGemm(1, at, m, k, b, n, 0, c2)
	sliceClose(t, c1, c2, 1e-4)
}

func TestGemmTBMatchesTransposedNaive(t *testing.T) {
	r := NewRNG(29)
	m, k, n := 3, 7, 4
	a := randSlice(r, m*k)
	// b is stored n×k; logical operand is bᵀ (k×n).
	b := randSlice(r, n*k)
	c1 := make([]float32, m*n)
	GemmTB(1, a, m, k, b, n, 0, c1)

	bt := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*k+p]
		}
	}
	c2 := make([]float32, m*n)
	naiveGemm(1, a, m, k, bt, n, 0, c2)
	sliceClose(t, c1, c2, 1e-4)
}

// Property: Gemm agrees with the naive reference on random small shapes.
func TestGemmProperty(t *testing.T) {
	f := func(seed uint64, md, kd, nd uint8) bool {
		m, k, n := int(md%6)+1, int(kd%6)+1, int(nd%6)+1
		r := NewRNG(seed)
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		c1 := randSlice(r, m*n)
		c2 := append([]float32(nil), c1...)
		Gemm(0.5, a, m, k, b, n, 1.5, c1)
		naiveGemm(0.5, a, m, k, b, n, 1.5, c2)
		for i := range c1 {
			if math.Abs(float64(c1[i]-c2[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Axpy(2, x, y)
	want := []float32{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: %v", y)
		}
	}
	Scal(0.5, y)
	if y[0] != 3 || y[2] != 6 {
		t.Fatalf("Scal: %v", y)
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("Dot = %v", d)
	}
	dst := make([]float32, 3)
	Sub(dst, y, x)
	if dst[0] != 2 {
		t.Fatalf("Sub: %v", dst)
	}
	Add(dst, x, x)
	if dst[2] != 6 {
		t.Fatalf("Add: %v", dst)
	}
}

func TestAverageInto(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 6}
	dst := make([]float32, 2)
	AverageInto(dst, a, b)
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("AverageInto: %v", dst)
	}
}

func TestClip(t *testing.T) {
	x := []float32{-5, 0.5, 7}
	Clip(x, 1)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("Clip: %v", x)
	}
	// Non-positive bound is a no-op.
	y := []float32{-5, 7}
	Clip(y, 0)
	if y[0] != -5 || y[1] != 7 {
		t.Fatalf("Clip(0): %v", y)
	}
}

func TestMaxAbsDiffAndMean(t *testing.T) {
	if d := MaxAbsDiff([]float32{1, 2}, []float32{1.5, 1}); d != 1 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if m := Mean([]float32{2, 4, 6}); m != 4 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}
