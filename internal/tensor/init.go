package tensor

import "math"

// Parameter initialisers. Crossbow initialises every model replica from the
// same scheme and seed so that S-SGD, SMA and EA-SGD start from identical
// weights (paper §5.1: "same model variable initialisation").

// InitHe fills w with He-normal values: N(0, sqrt(2/fanIn)). Standard for
// ReLU networks (ResNet, VGG).
func InitHe(r *RNG, w []float32, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = float32(r.NormFloat64() * std)
	}
}

// InitXavier fills w with Glorot-uniform values: U(-a, a) with
// a = sqrt(6/(fanIn+fanOut)). Used for the LeNet-style dense stacks.
func InitXavier(r *RNG, w []float32, fanIn, fanOut int) {
	if fanIn+fanOut <= 0 {
		fanIn = 1
	}
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = float32((2*r.Float64() - 1) * a)
	}
}

// InitConst fills w with a constant (bias initialisation).
func InitConst(w []float32, v float32) {
	for i := range w {
		w[i] = v
	}
}
