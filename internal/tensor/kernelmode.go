package tensor

import "fmt"

// KernelMode selects the compute-kernel contract (DESIGN.md §14).
//
// Deterministic (the default) is the replay oracle: SIMD lanes use MUL then
// ADD (never FMA) so every result is bit-identical to the scalar Go
// reference at any parallelism level, on any machine. Fast trades that
// portability for throughput: GEMM runs on FMA3 micro-kernels with a wider
// 8×8 register tile, validated against the scalar oracle by forward-error
// bounds instead of bit-equality. Fast results are still deterministic
// run-to-run on one machine (per-element accumulation order is fixed and
// independent of the worker count); they differ from Deterministic only in
// rounding, and fall back to the Deterministic kernels bit-for-bit on CPUs
// without FMA3 (or with CROSSBOW_NOFMA=1 set).
type KernelMode uint8

const (
	// Deterministic is the bit-pinned replay mode (MUL+ADD kernels).
	Deterministic KernelMode = iota
	// Fast is the opt-in FMA mode (error-bounded, not bit-portable).
	Fast
)

// String returns "deterministic" or "fast".
func (m KernelMode) String() string {
	if m == Fast {
		return "fast"
	}
	return "deterministic"
}

// ParseKernelMode parses a mode name: "deterministic"/"det"/"" or "fast".
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "deterministic", "det":
		return Deterministic, nil
	case "fast":
		return Fast, nil
	}
	return Deterministic, fmt.Errorf("tensor: unknown kernel mode %q (want deterministic or fast)", s)
}

// FMAAvailable reports whether the FMA3 micro-kernels will actually run
// in Fast mode on this machine (amd64 with FMA3+AVX2, not disabled by
// CROSSBOW_NOSIMD/CROSSBOW_NOFMA). When false, Fast mode computes with the
// Deterministic kernels, bit-for-bit.
func FMAAvailable() bool { return fmaActive() }

// Epilogue is a fused per-element post-pass applied to the GEMM output
// while each cache block is still resident, instead of as separate passes
// over the full matrix. The operation sequence per element is exactly the
// unfused layer chain's — bias add, then eval-mode batch-norm, then ReLU —
// so a fused forward is bit-identical to the unfused one under either
// kernel mode; fusion only removes memory traffic (and, via the memory
// planner, the intermediate buffers).
//
// Vectors are indexed by output row (GemmEpi: conv channels), or by output
// column when PerColumn is set (GemmTBEpi: dense units). Nil slices skip
// that stage; Gamma/Beta/Mean/InvStd must be all nil or all set.
type Epilogue struct {
	Bias  []float32 // v += Bias[i]
	Gamma []float32 // v = Gamma[i]*((v-Mean[i])*InvStd[i]) + Beta[i]
	Beta  []float32
	Mean  []float32
	InvStd []float32
	ReLU      bool // v = max(0, v), NaN -> 0, matching the ReLU layer
	PerColumn bool // index the vectors by column instead of row
}

// ApplyEpilogue runs the epilogue over a full row-major m×n matrix. The
// blocked GEMM drivers apply epilogues per cache block; this entry point is
// for paths that produce C some other way (e.g. the int8 forward).
func ApplyEpilogue(epi *Epilogue, c []float32, m, n int) {
	if epi != nil {
		applyEpi(epi, c, n, 0, m, 0, n)
	}
}

// applyEpi applies epi to C[rowLo:rowHi, colLo:colHi] (row stride ldc).
func applyEpi(epi *Epilogue, c []float32, ldc, rowLo, rowHi, colLo, colHi int) {
	bn := epi.Gamma != nil
	if epi.PerColumn {
		for i := rowLo; i < rowHi; i++ {
			row := c[i*ldc+colLo : i*ldc+colHi]
			for j := range row {
				v := row[j]
				jj := colLo + j
				if epi.Bias != nil {
					v += epi.Bias[jj]
				}
				if bn {
					v = epi.Gamma[jj]*((v-epi.Mean[jj])*epi.InvStd[jj]) + epi.Beta[jj]
				}
				if epi.ReLU && !(v > 0) {
					v = 0
				}
				row[j] = v
			}
		}
		return
	}
	for i := rowLo; i < rowHi; i++ {
		row := c[i*ldc+colLo : i*ldc+colHi]
		var bias, g, bt, mn, is float32
		hasBias := epi.Bias != nil
		if hasBias {
			bias = epi.Bias[i]
		}
		if bn {
			g, bt, mn, is = epi.Gamma[i], epi.Beta[i], epi.Mean[i], epi.InvStd[i]
		}
		for j, v := range row {
			if hasBias {
				v += bias
			}
			if bn {
				v = g*((v-mn)*is) + bt
			}
			if epi.ReLU && !(v > 0) {
				v = 0
			}
			row[j] = v
		}
	}
}

// GemmMode is Gemm under an explicit kernel mode: Deterministic routes to
// the bit-pinned blocked kernels, Fast to the FMA micro-kernels (when the
// CPU has them — otherwise it falls back to the Deterministic kernels,
// bit-for-bit).
func GemmMode(mode KernelMode, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmMode buffer too small")
	}
	gemmDispatch(gemmNN, mode, alpha, a, m, k, b, n, beta, c, nil)
}

// GemmTAMode is GemmTA under an explicit kernel mode.
func GemmTAMode(mode KernelMode, alpha float32, a []float32, k, m int, b []float32, n int, beta float32, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTAMode buffer too small")
	}
	gemmDispatch(gemmTA, mode, alpha, a, m, k, b, n, beta, c, nil)
}

// GemmTBMode is GemmTB under an explicit kernel mode. Note Fast mode uses
// preload association (alpha folded into the packed A panel) rather than
// GemmTB's per-panel alpha, so its rounding differs from the Deterministic
// path within the standard forward-error bound.
func GemmTBMode(mode KernelMode, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTBMode buffer too small")
	}
	gemmDispatch(gemmTB, mode, alpha, a, m, k, b, n, beta, c, nil)
}

// GemmEpi is GemmMode with a fused epilogue applied to each output cache
// block as it completes (per-row vectors: rows are conv output channels).
func GemmEpi(mode KernelMode, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32, epi *Epilogue) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmEpi buffer too small")
	}
	gemmDispatch(gemmNN, mode, alpha, a, m, k, b, n, beta, c, epi)
}

// GemmTBEpi is GemmTBMode with a fused epilogue (use PerColumn for dense
// layers, whose output columns are the units).
func GemmTBEpi(mode KernelMode, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32, epi *Epilogue) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTBEpi buffer too small")
	}
	gemmDispatch(gemmTB, mode, alpha, a, m, k, b, n, beta, c, epi)
}

// fastMinFlops is the 2·m·k·n floor below which Fast mode falls back to
// the deterministic kernels: at tiny shapes (classifier heads, per-class
// gradients) the FMA micro-kernels' packing overhead exceeds the
// multiply-add work and the blocked path is measurably faster. The
// demotion depends only on the operand shape, so Fast mode stays
// run-to-run reproducible on a fixed machine.
const fastMinFlops = 32 << 10

func gemmDispatch(kind gemmKind, mode KernelMode, alpha float32, a []float32, m, k int, b []float32, n int, beta float32, c []float32, epi *Epilogue) {
	if mode == Fast && fmaActive() && 2*m*k*n >= fastMinFlops {
		gemmFast(kind, alpha, a, m, k, b, n, beta, c, epi)
		return
	}
	gemmBlocked(kind, alpha, a, m, k, b, n, beta, c, epi)
}
