//go:build amd64

package tensor

// AVX2 panel packing for the fast-mode GEMM driver: transposes a full
// 8-row × kb-column block of row-major A into the fmaMR-interleaved panel
// layout, folding alpha in. Column count handled is kb&^7; the caller
// packs the remaining columns with the scalar loop. The asm performs the
// same per-element alpha*a[r][p] multiply as the scalar pack (an exact
// elementwise IEEE operation — multiplying by alpha==1.0 is the identity),
// so the packed panel is bit-identical either way.

//go:noescape
func packATr8AVX2(dst, src *float32, stride, kb8 int, alpha float32)

// packATrASM packs columns [0, kb&^7) of the 8×kb row-major block at
// a[off:] (row stride is `stride` floats) into dst, interleaved fmaMR-wide
// with alpha folded in. Returns how many columns it packed: 0 when SIMD is
// off, so the caller's scalar loop covers everything.
func packATrASM(dst, a []float32, off, stride, kb int, alpha float32) int {
	n := kb &^ 7
	if n == 0 || !elemActive() {
		return 0
	}
	// The last column block reads rows r*stride..r*stride+8; the final row
	// read ends at off+7*stride+n, within the slice because the caller's
	// block spans 8 full rows.
	packATr8AVX2(&dst[0], &a[off], stride, n, alpha)
	return n
}
