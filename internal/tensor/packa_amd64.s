//go:build amd64

#include "textflag.h"

// func packATr8AVX2(dst, src *float32, stride, kb8 int, alpha float32)
//
// Transposes the 8-row × kb8-column row-major block at src (row stride in
// floats) into dst as kb8 consecutive 8-wide column vectors — the
// fmaMR-interleaved A-panel layout — multiplying every element by alpha.
// kb8 is a positive multiple of 8 (the Go wrapper guarantees it).
//
// The 8×8 transpose is the classic unpack/shuffle/permute ladder. Go asm
// reverses Intel operand order: `VUNPCKLPS Y1, Y0, Y8` is Intel
// vunpcklps y8, y0, y1, i.e. t0 = unpacklo(r0, r1).
TEXT ·packATr8AVX2(SB), NOSPLIT, $0-36
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ stride+16(FP), DX
	SHLQ $2, DX                 // row stride in bytes
	MOVQ kb8+24(FP), CX
	SHRQ $3, CX                 // 8-column blocks
	VBROADCASTSS alpha+32(FP), Y15

	// Row-offset multiples for the strided loads: R10=3·DX, R11=5·DX,
	// R13=7·DX (1·, 2·, 4· and 6· come from the addressing modes).
	LEAQ (DX)(DX*2), R10
	LEAQ (DX)(DX*4), R11
	LEAQ (R10)(DX*4), R13

packloop:
	VMOVUPS (SI), Y0
	VMOVUPS (SI)(DX*1), Y1
	VMOVUPS (SI)(DX*2), Y2
	VMOVUPS (SI)(R10*1), Y3
	VMOVUPS (SI)(DX*4), Y4
	VMOVUPS (SI)(R11*1), Y5
	VMOVUPS (SI)(R10*2), Y6
	VMOVUPS (SI)(R13*1), Y7

	VMULPS Y15, Y0, Y0
	VMULPS Y15, Y1, Y1
	VMULPS Y15, Y2, Y2
	VMULPS Y15, Y3, Y3
	VMULPS Y15, Y4, Y4
	VMULPS Y15, Y5, Y5
	VMULPS Y15, Y6, Y6
	VMULPS Y15, Y7, Y7

	// Stage 1: 32-bit interleave of row pairs.
	VUNPCKLPS Y1, Y0, Y8        // t0
	VUNPCKHPS Y1, Y0, Y9        // t1
	VUNPCKLPS Y3, Y2, Y10       // t2
	VUNPCKHPS Y3, Y2, Y11       // t3
	VUNPCKLPS Y5, Y4, Y12       // t4
	VUNPCKHPS Y5, Y4, Y13       // t5
	VUNPCKLPS Y7, Y6, Y14       // t6
	VUNPCKHPS Y7, Y6, Y2        // t7

	// Stage 2: 64-bit shuffles pair the interleaves.
	VSHUFPS $0x44, Y10, Y8, Y0  // tt0
	VSHUFPS $0xEE, Y10, Y8, Y1  // tt1
	VSHUFPS $0x44, Y11, Y9, Y3  // tt2
	VSHUFPS $0xEE, Y11, Y9, Y4  // tt3
	VSHUFPS $0x44, Y14, Y12, Y5 // tt4
	VSHUFPS $0xEE, Y14, Y12, Y6 // tt5
	VSHUFPS $0x44, Y2, Y13, Y7  // tt6
	VSHUFPS $0xEE, Y2, Y13, Y8  // tt7

	// Stage 3: 128-bit lane swaps complete the transpose; column p of the
	// source block lands as the contiguous 8-vector at dst+32p.
	VPERM2F128 $0x20, Y5, Y0, Y9
	VPERM2F128 $0x20, Y6, Y1, Y10
	VPERM2F128 $0x20, Y7, Y3, Y11
	VPERM2F128 $0x20, Y8, Y4, Y12
	VPERM2F128 $0x31, Y5, Y0, Y13
	VPERM2F128 $0x31, Y6, Y1, Y0
	VPERM2F128 $0x31, Y7, Y3, Y1
	VPERM2F128 $0x31, Y8, Y4, Y2

	VMOVUPS Y9, (DI)
	VMOVUPS Y10, 32(DI)
	VMOVUPS Y11, 64(DI)
	VMOVUPS Y12, 96(DI)
	VMOVUPS Y13, 128(DI)
	VMOVUPS Y0, 160(DI)
	VMOVUPS Y1, 192(DI)
	VMOVUPS Y2, 224(DI)

	ADDQ $32, SI
	ADDQ $256, DI
	DECQ CX
	JNZ  packloop
	VZEROUPPER
	RET
