//go:build !amd64

package tensor

// packATrASM on non-amd64: the scalar pack covers the whole block.
func packATrASM(dst, a []float32, off, stride, kb int, alpha float32) int { return 0 }
