package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Intra-op parallelism: a shared, bounded pool of compute goroutines that
// the blocked kernels fan work out to. The pool is a semaphore, not a fixed
// set of worker loops — ParallelFor callers execute chunks inline whenever
// the pool is saturated, which makes nested parallel kernels (k learner
// goroutines each calling Gemm) deadlock-free by construction.
//
// The pool is sized from a process-wide compute budget shared by every
// concurrent learner goroutine: effective workers = max(1, budget/learners).
// Without the learner divisor, k learner goroutines each fanning out to a
// NumCPU-sized pool would put k×NumCPU compute goroutines on NumCPU cores
// (oversubscription); with it, inter-learner and intra-kernel parallelism
// together never exceed the budget.
//
// Determinism contract: ParallelFor only ever partitions an index range into
// disjoint chunks, and every kernel built on it computes each output element
// by an order that does not depend on chunk boundaries. Results are therefore
// bit-identical at any worker count, including 1 (see DESIGN.md §8).

var (
	parMu       sync.Mutex
	parBudget   int // process-wide compute-goroutine budget
	parLearners int // learner goroutines currently sharing the budget
	parWorkers  int // effective per-kernel bound: max(1, budget/learners)
	parSem      chan struct{}
)

func init() {
	parLearners = 1
	n := runtime.NumCPU()
	if s := os.Getenv("CROSSBOW_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	SetWorkerBudget(n)
}

// resize recomputes the effective pool. Caller holds parMu.
func resizeLocked() {
	parWorkers = parBudget / parLearners
	if parWorkers < 1 {
		parWorkers = 1
	}
	// The semaphore is shared by all learners, so its capacity is the
	// budget minus the learner goroutines themselves (each caller is
	// always one of its kernel's workers): k learners each borrowing at
	// most parWorkers-1 goroutines stay within k·(budget/k) ≤ budget.
	// With one learner this is the historical budget-1.
	cap := parBudget - parLearners
	if cap < 0 {
		cap = 0
	}
	parSem = make(chan struct{}, cap)
}

// SetWorkerBudget sets the process-wide compute-goroutine budget the kernel
// pool is carved from. n < 1 selects runtime.NumCPU(). The initial value is
// runtime.NumCPU(), overridable with the CROSSBOW_PARALLELISM environment
// variable. Changing the budget never changes numeric results.
func SetWorkerBudget(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	parMu.Lock()
	defer parMu.Unlock()
	parBudget = n
	resizeLocked()
}

// WorkerBudget returns the process-wide compute-goroutine budget.
func WorkerBudget() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parBudget
}

// SetActiveLearners declares how many learner goroutines currently share the
// worker budget, resizing the kernel pool to max(1, budget/k) so learner-
// level and kernel-level parallelism together never oversubscribe the
// budget. k < 1 selects 1. Returns the previous value so callers can
// restore it.
func SetActiveLearners(k int) (prev int) {
	if k < 1 {
		k = 1
	}
	parMu.Lock()
	defer parMu.Unlock()
	prev = parLearners
	parLearners = k
	resizeLocked()
	return prev
}

// ActiveLearners returns the declared number of learner goroutines sharing
// the budget.
func ActiveLearners() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parLearners
}

// SetParallelism bounds the number of goroutines the kernels use, including
// the caller. It is SetWorkerBudget under the current learner count: with
// one active learner (the default) the bound is exactly n, preserving the
// historical contract. n < 1 selects runtime.NumCPU(). Changing parallelism
// never changes numeric results.
func SetParallelism(n int) { SetWorkerBudget(n) }

// Parallelism returns the current effective kernel worker bound,
// max(1, WorkerBudget()/ActiveLearners()).
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parWorkers
}

func parState() (int, chan struct{}) {
	parMu.Lock()
	defer parMu.Unlock()
	return parWorkers, parSem
}

// ParallelFor splits [0, n) into at most Parallelism() disjoint chunks of at
// least grain iterations each and runs fn over them, possibly concurrently.
// fn must treat its [lo, hi) range independently of the others (disjoint
// writes); chunk goroutines are borrowed from the shared bounded pool and
// excess chunks run inline on the caller.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers, sem := parState()
	if workers == 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size, rem := n/chunks, n%chunks
	var wg sync.WaitGroup
	lo := size
	if rem > 0 {
		lo++
	}
	first := lo // caller's own chunk is [0, first)
	for c := 1; c < chunks; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		clo, chi := lo, hi
		lo = hi
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				fn(clo, chi)
			}()
		default:
			// Pool saturated: run inline. Same chunk, same result.
			fn(clo, chi)
		}
	}
	fn(0, first)
	wg.Wait()
}
