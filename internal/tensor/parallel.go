package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Intra-op parallelism: a shared, bounded pool of compute goroutines that
// the blocked kernels fan work out to. The pool is a semaphore, not a fixed
// set of worker loops — ParallelFor callers execute chunks inline whenever
// the pool is saturated, which makes nested parallel kernels (k learner
// goroutines each calling Gemm) deadlock-free by construction.
//
// Determinism contract: ParallelFor only ever partitions an index range into
// disjoint chunks, and every kernel built on it computes each output element
// by an order that does not depend on chunk boundaries. Results are therefore
// bit-identical at any worker count, including 1 (see DESIGN.md §8).

var (
	parMu      sync.Mutex
	parWorkers int
	parSem     chan struct{}
)

func init() {
	n := runtime.NumCPU()
	if s := os.Getenv("CROSSBOW_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	SetParallelism(n)
}

// SetParallelism bounds the number of goroutines the kernels use, including
// the caller. n < 1 selects runtime.NumCPU(). The initial value is
// runtime.NumCPU(), overridable with the CROSSBOW_PARALLELISM environment
// variable. Changing parallelism never changes numeric results.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	parMu.Lock()
	defer parMu.Unlock()
	parWorkers = n
	// Capacity n-1: the caller is always one of the workers.
	parSem = make(chan struct{}, n-1)
}

// Parallelism returns the current kernel worker bound.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parWorkers
}

func parState() (int, chan struct{}) {
	parMu.Lock()
	defer parMu.Unlock()
	return parWorkers, parSem
}

// ParallelFor splits [0, n) into at most Parallelism() disjoint chunks of at
// least grain iterations each and runs fn over them, possibly concurrently.
// fn must treat its [lo, hi) range independently of the others (disjoint
// writes); chunk goroutines are borrowed from the shared bounded pool and
// excess chunks run inline on the caller.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers, sem := parState()
	if workers == 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size, rem := n/chunks, n%chunks
	var wg sync.WaitGroup
	lo := size
	if rem > 0 {
		lo++
	}
	first := lo // caller's own chunk is [0, first)
	for c := 1; c < chunks; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		clo, chi := lo, hi
		lo = hi
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				fn(clo, chi)
			}()
		default:
			// Pool saturated: run inline. Same chunk, same result.
			fn(clo, chi)
		}
	}
	fn(0, first)
	wg.Wait()
}
