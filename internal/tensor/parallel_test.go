package tensor

import (
	"sync"
	"testing"
)

// TestWorkerBudgetDividesPool pins the oversubscription fix: the effective
// kernel pool is the process-wide budget divided by the declared number of
// concurrent learner goroutines, never below one.
func TestWorkerBudgetDividesPool(t *testing.T) {
	prevBudget := WorkerBudget()
	prevLearners := ActiveLearners()
	defer func() {
		SetActiveLearners(prevLearners)
		SetWorkerBudget(prevBudget)
	}()

	SetWorkerBudget(8)
	cases := []struct{ learners, want int }{
		{1, 8}, {2, 4}, {3, 2}, {4, 2}, {8, 1}, {16, 1}, {0, 8},
	}
	for _, c := range cases {
		SetActiveLearners(c.learners)
		if got := Parallelism(); got != c.want {
			t.Errorf("budget 8, learners %d: Parallelism() = %d, want %d", c.learners, got, c.want)
		}
	}

	SetActiveLearners(2)
	SetWorkerBudget(6)
	if got := Parallelism(); got != 3 {
		t.Errorf("budget 6, learners 2: Parallelism() = %d, want 3", got)
	}
	if got := WorkerBudget(); got != 6 {
		t.Errorf("WorkerBudget() = %d, want 6", got)
	}
	if got := ActiveLearners(); got != 2 {
		t.Errorf("ActiveLearners() = %d, want 2", got)
	}
}

// TestSetParallelismBackCompat: with one active learner, SetParallelism(n)
// bounds the pool to exactly n, the historical contract.
func TestSetParallelismBackCompat(t *testing.T) {
	prevBudget := WorkerBudget()
	prevLearners := ActiveLearners()
	defer func() {
		SetActiveLearners(prevLearners)
		SetWorkerBudget(prevBudget)
	}()

	SetActiveLearners(1)
	for _, n := range []int{1, 2, 7} {
		SetParallelism(n)
		if got := Parallelism(); got != n {
			t.Errorf("SetParallelism(%d): Parallelism() = %d, want %d", n, got, n)
		}
	}
}

// TestSetActiveLearnersRestore verifies the save/restore idiom drivers use
// around a training run, including under concurrent ParallelFor traffic.
func TestSetActiveLearnersRestore(t *testing.T) {
	prevBudget := WorkerBudget()
	prevLearners := ActiveLearners()
	defer func() {
		SetActiveLearners(prevLearners)
		SetWorkerBudget(prevBudget)
	}()

	SetWorkerBudget(4)
	SetActiveLearners(1)
	prev := SetActiveLearners(4)
	if prev != 1 {
		t.Fatalf("SetActiveLearners returned prev %d, want 1", prev)
	}

	// ParallelFor must stay correct (full coverage, disjoint chunks) while
	// the pool is being resized concurrently.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			SetActiveLearners(1 + i%4)
		}
	}()
	for trial := 0; trial < 50; trial++ {
		const n = 1000
		marks := make([]int32, n)
		var mu sync.Mutex
		ParallelFor(n, 64, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				marks[i]++
			}
			mu.Unlock()
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("trial %d: index %d covered %d times", trial, i, m)
			}
		}
	}
	wg.Wait()
	if prev := SetActiveLearners(prevLearners); prev < 1 {
		t.Fatalf("learner count fell below 1: %d", prev)
	}
}
