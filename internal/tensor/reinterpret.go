package tensor

import "unsafe"

// AsInt32 reinterprets a float32 slice as int32 storage of the same length.
// The memory planner deals exclusively in float32 elements; index-valued
// buffers (max-pool argmax) are planned as float32 ranges and viewed through
// this cast, which is safe because float32 and int32 share size and
// alignment. The two views alias: writes through one are visible through the
// other.
func AsInt32(s []float32) []int32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s))
}
