package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64
// seeded xorshift128+). Every stochastic choice in the repository — dataset
// synthesis, weight initialisation, shuffling, dropout — draws from an RNG
// constructed with an explicit seed so experiments replay bit-for-bit.
type RNG struct {
	s0, s1 uint64
	// cached second Box-Muller variate
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	// SplitMix64 expansion of the seed into two non-zero state words.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r := &RNG{s0: next(), s1: next()}
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits (xorshift128+).
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm fills out with a random permutation of [0, len(out)) using the
// Fisher-Yates shuffle.
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Split derives an independent generator from r. Sequential Split calls
// yield distinct streams, so one master seed can fan out to per-worker RNGs.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
