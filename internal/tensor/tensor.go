package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or FromSlice to construct a usable one.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := Volume(shape)
	return &Tensor{shape: cloneShape(shape), data: make([]float32, n)}
}

// NewShell returns a tensor with the given shape and no backing data yet.
// Shell tensors carry layout while the memory planner decides where the
// elements live; attach storage with SetData before any element access.
func NewShell(shape ...int) *Tensor {
	return &Tensor{shape: cloneShape(shape)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != Volume(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)",
			len(data), shape, Volume(shape)))
	}
	return &Tensor{shape: cloneShape(shape), data: data}
}

// Volume returns the number of elements implied by shape. An empty shape has
// volume 0.
func Volume(shape []int) int {
	if len(shape) == 0 {
		return 0
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func cloneShape(s []int) []int {
	c := make([]int, len(s))
	copy(c, s)
	return c
}

// Shape returns the tensor's shape. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// SetData rebinds the tensor to new backing storage of exactly the shape's
// volume — how planned (arena) buffers are attached to a layer's stable
// tensor objects without allocating.
func (t *Tensor) SetData(data []float32) {
	if len(data) != Volume(t.shape) {
		panic(fmt.Sprintf("tensor: SetData length %d does not match shape %v", len(data), t.shape))
	}
	t.data = data
}

// HasData reports whether backing storage is attached.
func (t *Tensor) HasData() bool { return t.data != nil }

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set writes v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a tensor sharing t's data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Volume(shape) != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return &Tensor{shape: cloneShape(shape), data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: copy volume mismatch %d != %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// MaxAbs returns the largest absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the tensor's elements.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
