package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := x.Data()[1*4+2]; got != 7.5 {
		t.Fatalf("flat offset = %v, want 7.5", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(9, 2, 3)
	if x.Data()[11] != 9 {
		t.Fatal("reshape must alias the original data")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("reshaped dims = %v", y.Shape())
	}
}

func TestReshapeBadVolumePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Data()[0] = 5
	if x.Data()[0] != 1 {
		t.Fatal("clone must not alias")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("different shapes reported equal")
	}
	if New(2, 3).SameShape(New(2, 3, 1)) {
		t.Fatal("different ranks reported equal")
	}
}

func TestVolume(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{2, 0, 4}, 0},
	}
	for _, c := range cases {
		if got := Volume(c.shape); got != c.want {
			t.Errorf("Volume(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestMaxAbsAndL2(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if math.Abs(x.L2Norm()-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", x.L2Norm())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := make([]int, 257)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

// Property: Intn always lands in range for arbitrary positive n.
func TestRNGIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitHeVariance(t *testing.T) {
	r := NewRNG(3)
	w := make([]float32, 100000)
	InitHe(r, w, 50)
	var sq float64
	for _, v := range w {
		sq += float64(v) * float64(v)
	}
	variance := sq / float64(len(w))
	want := 2.0 / 50.0
	if math.Abs(variance-want)/want > 0.05 {
		t.Fatalf("He variance = %v, want ~%v", variance, want)
	}
}

func TestInitXavierBounds(t *testing.T) {
	r := NewRNG(3)
	w := make([]float32, 10000)
	InitXavier(r, w, 30, 70)
	limit := float32(math.Sqrt(6.0 / 100.0))
	for _, v := range w {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
}
