package tensor

import "math"

// This file contains the flat vector kernels used by the training algorithms.
// Crossbow keeps each model replica's weights and gradients in contiguous
// memory (paper §4.4), so SMA corrections, momentum updates and all-reduce
// are expressed as operations on raw []float32 of equal length.

// Axpy computes y += a*x element-wise. Slices must have equal length.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scal scales x in place by a.
func Scal(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Dot returns the inner product of x and y in float64 precision.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}

// Add computes dst = a + b element-wise.
func Add(dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b element-wise. dst may alias a or b.
func Sub(dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst; lengths must match.
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Copy length mismatch")
	}
	copy(dst, src)
}

// ZeroSlice sets every element of x to 0.
func ZeroSlice(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// L2 returns the Euclidean norm of x.
func L2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference between x
// and y; useful in tests asserting replica consistency.
func MaxAbsDiff(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range x {
		if d := math.Abs(float64(x[i]) - float64(y[i])); d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float32) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s / float64(len(x))
}

// AverageInto writes the element-wise average of the given vectors into dst.
// All vectors must share dst's length and there must be at least one.
func AverageInto(dst []float32, vecs ...[]float32) {
	if len(vecs) == 0 {
		panic("tensor: AverageInto with no inputs")
	}
	inv := 1 / float32(len(vecs))
	for i := range dst {
		var s float32
		for _, v := range vecs {
			s += v[i]
		}
		dst[i] = s * inv
	}
}

// Clip bounds every element of x to [-c, c]. Gradient clipping keeps the
// scaled-down benchmark models stable at the paper's learning rates.
func Clip(x []float32, c float32) {
	if c <= 0 {
		return
	}
	for i, v := range x {
		if v > c {
			x[i] = c
		} else if v < -c {
			x[i] = -c
		}
	}
}
