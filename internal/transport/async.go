package transport

import (
	"sync"
	"time"
)

// PendingRound is a handle on an all-reduce running asynchronously on the
// node's exchange goroutine. The caller keeps computing against its own
// state while the collective proceeds; buf must not be touched until Wait
// returns. Exactly the synchronous AllReduce runs underneath — same
// barrier, same segmented collective, same abort semantics — so a
// completed asynchronous round is indistinguishable from a synchronous
// one, byte for byte.
type PendingRound struct {
	n     *Node
	buf   []float32
	begun time.Time

	done     chan struct{}
	finished time.Time
	r        Round
	err      error

	statOnce sync.Once
}

// BeginAllReduce starts an asynchronous all-reduce of buf across the live
// cluster and returns immediately. Rounds are serialised on one exchange
// goroutine per node (started lazily on the first call), so callers that
// overlap one round per τ_global boundary never queue. Ownership of buf
// transfers to the transport until Wait returns.
func (n *Node) BeginAllReduce(buf []float32) (*PendingRound, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if !n.exchStarted {
		n.exchStarted = true
		n.wg.Add(1)
		go n.exchangeLoop()
	}
	n.mu.Unlock()
	p := &PendingRound{n: n, buf: buf, begun: time.Now(), done: make(chan struct{})}
	// exchCh is unbuffered: the handle is either picked up by the exchange
	// goroutine or refused on shutdown — it can never strand in a queue
	// with nobody left to complete it.
	select {
	case n.exchCh <- p:
	case <-n.exchStop:
		return nil, ErrClosed
	}
	n.stats.asyncRounds.Add(1)
	return p, nil
}

// Poll reports whether the round has completed (Wait would not block).
func (p *PendingRound) Poll() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the round completes and returns its report, exactly as
// the synchronous AllReduce would have. The time Wait spends blocked is
// the exchange cost the overlap failed to hide; the remainder of the
// round's duration ran concurrently with the caller's computation and is
// accounted as hidden in the node's stats.
func (p *PendingRound) Wait() (Round, error) {
	w0 := time.Now()
	<-p.done
	p.statOnce.Do(func() {
		blocked := time.Since(w0).Nanoseconds()
		p.n.stats.overlapBlockedNs.Add(blocked)
		if hidden := p.finished.Sub(p.begun).Nanoseconds() - blocked; hidden > 0 {
			p.n.stats.overlapHiddenNs.Add(hidden)
		}
	})
	return p.r, p.err
}

// exchangeLoop is the per-node exchange goroutine: it drives queued
// asynchronous rounds through the ordinary synchronous path one at a time,
// and on shutdown fails any round still queued with ErrClosed.
func (n *Node) exchangeLoop() {
	defer n.wg.Done()
	for {
		select {
		case p := <-n.exchCh:
			p.r, p.err = n.AllReduce(p.buf)
			p.finished = time.Now()
			close(p.done)
		case <-n.exchStop:
			for {
				select {
				case p := <-n.exchCh:
					p.err = ErrClosed
					p.finished = time.Now()
					close(p.done)
				default:
					return
				}
			}
		}
	}
}
