package transport

import (
	"fmt"
	"testing"
	"time"
)

// TestTinyBufferManySegments is the degenerate-chunking regression: a
// buffer shorter than the rank count (and far shorter than the segment
// count) used to produce empty ring chunks, and with pipelining every
// empty segment would have become a zero-length Data frame. Both
// topologies must still produce the bit-exact sum, and the empty-segment
// guard must keep the frame volume proportional to the NON-empty
// segments only.
func TestTinyBufferManySegments(t *testing.T) {
	for _, tc := range []struct {
		k, n, segs int
		tree       bool
	}{
		{5, 3, 8, false}, // len(buf) < k: some ring chunks are empty
		{3, 2, 64, false},
		{4, 1, 16, false},
		{5, 3, 8, true},
		{3, 2, 64, true},
	} {
		t.Run(fmt.Sprintf("k%d_n%d_s%d_tree%v", tc.k, tc.n, tc.segs, tc.tree), func(t *testing.T) {
			nodes := startCluster(t, tc.k, tc.tree, func(rank int, cfg *Config) {
				cfg.Segments = tc.segs
			})
			bufs, want := rankBufs(tc.k, tc.n)
			for i, r := range runRound(t, nodes, bufs) {
				if r.Aborted || r.Participants != tc.k {
					t.Fatalf("rank %d round = %+v", i, r)
				}
			}
			checkSums(t, bufs, want)

			// Empty segments must not hit the wire: with n << segs almost
			// every segment is empty, so the per-node frame count stays far
			// below segments × collective steps. The bound is generous (it
			// admits every control frame and a test's worth of heartbeats)
			// but collapses if zero-length Data frames were emitted.
			for _, n := range nodes {
				s := n.Stats()
				limit := int64(4*tc.n*tc.k + 200)
				if s.FramesSent > limit {
					t.Fatalf("rank %d sent %d frames for a %d-float buffer (limit %d): empty segments on the wire?",
						n.Rank(), s.FramesSent, tc.n, limit)
				}
			}
		})
	}
}

// TestBeginAllReduceOverlap drives the asynchronous round API: every rank
// launches with BeginAllReduce, "computes" while the exchange goroutine
// runs the collective, then folds with Wait. Sums must be bit-identical
// to the synchronous path's, rounds must stay sequenced, and the overlap
// counters must record the rounds.
func TestBeginAllReduceOverlap(t *testing.T) {
	for _, tree := range []bool{false, true} {
		t.Run(fmt.Sprintf("tree%v", tree), func(t *testing.T) {
			const k, n, rounds = 3, 1 << 12, 3
			nodes := startCluster(t, k, tree, nil)

			var lastSeq uint64
			for round := 0; round < rounds; round++ {
				bufs, want := rankBufs(k, n)
				pend := make([]*PendingRound, k)
				for i, node := range nodes {
					p, err := node.BeginAllReduce(bufs[i])
					if err != nil {
						t.Fatalf("rank %d BeginAllReduce: %v", i, err)
					}
					pend[i] = p
				}
				// The caller's compute window: the collective makes progress
				// without any Wait being parked on it.
				time.Sleep(10 * time.Millisecond)
				var seq uint64
				for i, p := range pend {
					r, err := p.Wait()
					if err != nil {
						t.Fatalf("rank %d Wait: %v", i, err)
					}
					if r.Aborted || r.Participants != k {
						t.Fatalf("rank %d async round = %+v", i, r)
					}
					if round > 0 && r.Seq != lastSeq+1 {
						t.Fatalf("rank %d seq %d after %d", i, r.Seq, lastSeq)
					}
					if i > 0 && r.Seq != seq {
						t.Fatalf("rank %d seq %d, rank 0 saw %d", i, r.Seq, seq)
					}
					seq = r.Seq
					if !p.Poll() {
						t.Fatalf("rank %d Poll false after Wait", i)
					}
					// Wait is idempotent: a second call returns the same round.
					if r2, err := p.Wait(); err != nil || r2.Seq != r.Seq {
						t.Fatalf("rank %d re-Wait = %+v, %v", i, r2, err)
					}
				}
				lastSeq = seq
				checkSums(t, bufs, want)
			}
			for _, node := range nodes {
				if s := node.Stats(); s.AsyncRounds != rounds {
					t.Fatalf("rank %d AsyncRounds = %d, want %d", node.Rank(), s.AsyncRounds, rounds)
				}
			}
		})
	}
}

// TestBeginAllReduceClosed pins shutdown behaviour: a Begin after Close
// fails fast with ErrClosed instead of stranding a handle, and a Close
// with a round in flight resolves the pending handle (with either a
// completed round or ErrClosed) rather than deadlocking Wait.
func TestBeginAllReduceClosed(t *testing.T) {
	nodes := startCluster(t, 2, false, nil)
	nodes[0].Close()
	if _, err := nodes[0].BeginAllReduce(make([]float32, 8)); err != ErrClosed {
		t.Fatalf("Begin after Close: err = %v, want ErrClosed", err)
	}

	// In-flight round on rank 1 while its peer is gone: Close must still
	// resolve the handle promptly.
	p, err := nodes[1].BeginAllReduce(make([]float32, 8))
	if err != nil {
		t.Fatalf("BeginAllReduce: %v", err)
	}
	go nodes[1].Close()
	done := make(chan struct{})
	go func() {
		p.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung across Close")
	}
}
