package transport

import (
	"testing"
	"time"

	"crossbow/internal/chaos"
)

// TestFrozenPeerWatchdogAborts pins the tentpole failure mode of this
// transport: a peer whose control plane and heartbeats keep flowing but
// whose collective chunks silently stop — a GC pause, a wedged disk, a
// half-dead NIC. The failure detector never fires (the peer IS alive), so
// before the round watchdog existed this test deadlocked: every rank sat
// in recvData forever. Now the stall's direct victim must abort within its
// RoundTimeout, name the suspect in the Abort fan-out so every rank cuts
// and quarantines it, and the survivors' next round must complete as a
// Restart.
//
// Rank 2 is frozen, so in ring order its direct victim is rank 0 (prev of
// rank 0 is rank 2). Rank 0 gets the short watchdog; the others get a much
// longer one so the test is deterministic about WHO detects the stall —
// in production the direct victim simply arms its timer one ring-step
// earlier than the downstream ranks, and its Abort reaches them long
// before their own margin expires.
func TestFrozenPeerWatchdogAborts(t *testing.T) {
	inj := chaos.NewInjector(chaos.Config{Seed: 1})
	nodes := startCluster(t, 3, false, func(rank int, cfg *Config) {
		cfg.Chaos = inj
		cfg.Quarantine = 30 * time.Second // keep the frozen rank out for the whole test
		cfg.RoundTimeout = 1200 * time.Millisecond
		if rank == 0 {
			cfg.RoundTimeout = 300 * time.Millisecond
		}
	})

	// A healthy round first: the watchdog must not misfire.
	bufs, want := rankBufs(3, 1<<14)
	for i, r := range runRound(t, nodes, bufs) {
		if r.Aborted {
			t.Fatalf("rank %d healthy round aborted: %+v", i, r)
		}
	}
	checkSums(t, bufs, want)

	inj.Freeze(2)

	// All three enter the round; rank 2's Data frames vanish. Pre-watchdog
	// this hung forever — the test harness timeout below is the pin.
	bufs2, _ := rankBufs(3, 1<<14)
	rounds := make([]Round, 3)
	done := make(chan int, 3)
	for i, n := range nodes {
		go func(i int, n *Node) {
			rounds[i], _ = n.AllReduce(bufs2[i])
			done <- i
		}(i, n)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("cluster deadlocked on a frozen peer: watchdog never fired")
		}
	}
	if !rounds[0].Aborted || !rounds[1].Aborted {
		t.Fatalf("victim rounds = %+v, %+v; want both aborted", rounds[0], rounds[1])
	}
	if s := nodes[0].Stats(); s.WatchdogFires < 1 || s.Quarantines < 1 {
		t.Fatalf("rank 0 (direct victim) stats: %+v, want watchdog fire + quarantine", s)
	}
	// Rank 1 never timed out itself — it learned the suspect from rank 0's
	// Abort fan-out and must have cut and quarantined rank 2 on its own.
	if s := nodes[1].Stats(); s.WatchdogFires != 0 || s.Quarantines < 1 {
		t.Fatalf("rank 1 (accused) stats: %+v, want 0 fires but >=1 quarantine", s)
	}

	// Recovery: the survivors re-form without rank 2 (it is quarantined, so
	// it cannot wedge the next round) and the first completed round is a
	// Restart — the dirty bit from the abort forces z re-derivation.
	bufs3, want3 := rankBufs(2, 1<<10)
	for i, r := range runRound(t, nodes[:2], bufs3) {
		if r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d recovery round = %+v, want 2-member restart", i, r)
		}
	}
	checkSums(t, bufs3, want3)

	// And once the Restart healed the divergence, rounds are plain again.
	bufs4, want4 := rankBufs(2, 1<<10)
	for i, r := range runRound(t, nodes[:2], bufs4) {
		if r.Aborted || r.Restart {
			t.Fatalf("rank %d post-recovery round = %+v, want plain round", i, r)
		}
	}
	checkSums(t, bufs4, want4)
}

// TestFrozenPeerWatchdogAbortsOverlap re-runs the frozen-peer scenario
// through the asynchronous round API with aggressive pipelining: the
// watchdog is armed per segment, so a peer that freezes mid-collective —
// after some segments of a transfer have already arrived — must still
// trip the stall's direct victim within its RoundTimeout, fan the abort
// out, and leave the frozen rank quarantined. The launching goroutines
// meanwhile sit in Wait, which must return the aborted round rather than
// hang.
func TestFrozenPeerWatchdogAbortsOverlap(t *testing.T) {
	inj := chaos.NewInjector(chaos.Config{Seed: 5})
	nodes := startCluster(t, 3, false, func(rank int, cfg *Config) {
		cfg.Chaos = inj
		cfg.Segments = 8
		cfg.Quarantine = 30 * time.Second
		cfg.RoundTimeout = 1200 * time.Millisecond
		if rank == 0 {
			cfg.RoundTimeout = 300 * time.Millisecond
		}
	})

	// A healthy overlapped round first: per-segment watchdogs must not
	// misfire while the collective is pipelined.
	bufs, want := rankBufs(3, 1<<14)
	pend := make([]*PendingRound, 3)
	for i, n := range nodes {
		p, err := n.BeginAllReduce(bufs[i])
		if err != nil {
			t.Fatalf("rank %d BeginAllReduce: %v", i, err)
		}
		pend[i] = p
	}
	for i, p := range pend {
		if r, err := p.Wait(); err != nil || r.Aborted {
			t.Fatalf("rank %d healthy overlapped round = %+v, err %v", i, r, err)
		}
	}
	checkSums(t, bufs, want)

	inj.Freeze(2)

	bufs2, _ := rankBufs(3, 1<<14)
	for i, n := range nodes {
		p, err := n.BeginAllReduce(bufs2[i])
		if err != nil {
			t.Fatalf("rank %d BeginAllReduce: %v", i, err)
		}
		pend[i] = p
	}
	rounds := make([]Round, 3)
	done := make(chan int, 3)
	for i, p := range pend {
		go func(i int, p *PendingRound) {
			rounds[i], _ = p.Wait()
			done <- i
		}(i, p)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("overlapped round deadlocked on a frozen peer: watchdog never fired")
		}
	}
	if !rounds[0].Aborted || !rounds[1].Aborted {
		t.Fatalf("victim rounds = %+v, %+v; want both aborted", rounds[0], rounds[1])
	}
	if s := nodes[0].Stats(); s.WatchdogFires < 1 || s.Quarantines < 1 {
		t.Fatalf("rank 0 (direct victim) stats: %+v, want watchdog fire + quarantine", s)
	}
	if s := nodes[1].Stats(); s.Quarantines < 1 {
		t.Fatalf("rank 1 (accused) stats: %+v, want >=1 quarantine", s)
	}

	// Recovery without the quarantined rank, still through the async API.
	bufs3, want3 := rankBufs(2, 1<<10)
	for i, n := range nodes[:2] {
		p, err := n.BeginAllReduce(bufs3[i])
		if err != nil {
			t.Fatalf("rank %d recovery BeginAllReduce: %v", i, err)
		}
		pend[i] = p
	}
	for i, p := range pend[:2] {
		r, err := p.Wait()
		if err != nil || r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d recovery round = %+v, err %v, want 2-member restart", i, r, err)
		}
	}
	checkSums(t, bufs3, want3)
}

// TestCorruptingPeerQuarantined runs a round in which every Data frame is
// bit-flipped on the wire. The CRC must keep the poison out of the sums,
// classify the link as corrupt (errWire), quarantine the sender, and —
// once the fault is tuned away and the quarantine lapses — the pair must
// reconnect and complete a Restart round with correct sums.
func TestCorruptingPeerQuarantined(t *testing.T) {
	inj := chaos.NewInjector(chaos.Config{Seed: 7, Corrupt: 1})
	nodes := startCluster(t, 2, false, func(rank int, cfg *Config) {
		cfg.Chaos = inj
		cfg.Quarantine = 300 * time.Millisecond
		cfg.RoundTimeout = 5 * time.Second
	})

	bufs, _ := rankBufs(2, 256)
	rounds := make([]Round, 2)
	done := make(chan struct{}, 2)
	for i, n := range nodes {
		go func(i int, n *Node) {
			rounds[i], _ = n.AllReduce(bufs[i])
			done <- struct{}{}
		}(i, n)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("corrupted round hung")
		}
	}
	if !rounds[0].Aborted && !rounds[1].Aborted {
		t.Fatalf("all-corrupt round completed: %+v, %+v", rounds[0], rounds[1])
	}
	s0, s1 := nodes[0].Stats(), nodes[1].Stats()
	if s0.CorruptFrames+s1.CorruptFrames < 1 {
		t.Fatalf("no corrupt frame detected: %+v / %+v", s0, s1)
	}
	if s0.Quarantines+s1.Quarantines < 1 {
		t.Fatalf("no quarantine issued: %+v / %+v", s0, s1)
	}

	// Fault repaired: rates to zero, quarantine left to expire.
	inj.Tune(chaos.Config{Seed: 7})
	for _, n := range nodes {
		if got := n.WaitPeers(5 * time.Second); got != 1 {
			t.Fatalf("rank %d sees %d peers after quarantine expiry, want 1", n.Rank(), got)
		}
	}
	bufs2, want2 := rankBufs(2, 256)
	for i, r := range runRound(t, nodes, bufs2) {
		if r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d post-repair round = %+v, want 2-member restart", i, r)
		}
	}
	checkSums(t, bufs2, want2)
}

// TestPartitionHeals splits {0,1} from {2} — every cross-partition frame,
// heartbeats included, vanishes. The majority side must shrink its view
// and keep completing rounds; the minority degenerates to a solo round.
// After Heal the mesh re-forms and a full-view Restart round sums across
// all three again.
func TestPartitionHeals(t *testing.T) {
	inj := chaos.NewInjector(chaos.Config{Seed: 3})
	nodes := startCluster(t, 3, false, func(rank int, cfg *Config) {
		cfg.Chaos = inj
	})

	bufs, want := rankBufs(3, 512)
	runRound(t, nodes, bufs)
	checkSums(t, bufs, want)

	inj.Partition([]int{0, 1})

	// Majority side: the barrier stalls until the failure detector expels
	// rank 2 (its heartbeats no longer arrive), then completes a 2-member
	// Restart round.
	bufs2, want2 := rankBufs(2, 512)
	for i, r := range runRound(t, nodes[:2], bufs2) {
		if r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d majority round = %+v, want 2-member restart", i, r)
		}
	}
	checkSums(t, bufs2, want2)

	// Minority side: rank 2 alone degenerates to a no-op round.
	solo := []float32{1, 2, 3}
	r, err := nodes[2].AllReduce(solo)
	if err != nil || r.Aborted || r.Participants != 1 {
		t.Fatalf("minority round = %+v, err %v", r, err)
	}

	inj.Heal()
	for _, n := range nodes {
		if got := n.WaitPeers(5 * time.Second); got != 2 {
			t.Fatalf("rank %d sees %d peers after heal, want 2", n.Rank(), got)
		}
	}
	bufs3, want3 := rankBufs(3, 512)
	for i, r := range runRound(t, nodes, bufs3) {
		if r.Aborted || r.Participants != 3 || !r.Restart {
			t.Fatalf("rank %d healed round = %+v, want 3-member restart", i, r)
		}
	}
	checkSums(t, bufs3, want3)

	if inj.Stats().Cut < 1 {
		t.Fatalf("injector cut no frames across the partition: %+v", inj.Stats())
	}
}
