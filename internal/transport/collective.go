package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crossbow/internal/metrics"
)

// errAborted signals a membership change mid-collective; AllReduce maps it
// to Round.Aborted rather than surfacing it to callers.
var errAborted = errors.New("transport: round aborted by membership change")

// errStalled is the round watchdog's verdict: the named peer owed us a
// chunk and stayed silent for RoundTimeout even though the failure
// detector still considered it alive. AllReduce broadcasts the suspect in
// the Abort frame so every participant cuts it, not just us.
type errStalled struct{ rank int }

func (e errStalled) Error() string {
	return fmt.Sprintf("transport: peer %d stalled the round past the watchdog", e.rank)
}

// AllReduce sums buf element-wise across every live member of the cluster,
// in place, and reports the round. The reduction order is fixed by rank,
// so all participants hold bit-identical sums afterwards — which is what
// lets each node apply the cluster-average update independently and stay
// replicated.
//
// The call barriers with the current coordinator (lowest alive rank): each
// member announces Ready, the coordinator waits for every live member and
// answers Begin with the round number and participant view. A view that
// differs from the previous round's sets Round.Restart. If a peer dies
// mid-collective the round aborts (Round.Aborted; buf is then garbage) —
// the caller skips the exchange and the next successful round restarts.
//
// A single-member view degenerates to a no-op round: buf already holds the
// "sum".
func (n *Node) AllReduce(buf []float32) (Round, error) {
	start := time.Now()
	bm, err := n.barrier()
	if err != nil {
		return Round{}, err
	}
	view := ranksOf(bm.view)
	r := Round{Seq: bm.round, Participants: len(view), Restart: bm.restart}
	r.WaitNs = time.Since(start).Nanoseconds()
	n.stats.barrierNs.Add(r.WaitNs)
	if bm.restart {
		n.stats.restartRounds.Add(1)
	}
	if len(view) > 1 {
		cstart := time.Now()
		if n.cfg.Tree {
			err = n.treeAllReduce(bm, view, buf)
		} else {
			err = n.ringAllReduce(bm, view, buf)
		}
		r.CollectiveNs = time.Since(cstart).Nanoseconds()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return Round{}, ErrClosed
			}
			var stall errStalled
			var suspects uint64
			if errors.As(err, &stall) {
				suspects = 1 << uint(stall.rank)
			}
			n.abortRoundPeers(bm, view, suspects)
			n.stats.aborts.Add(1)
			r.Aborted = true
			// An aborted round may have completed on some peers: our state
			// can diverge from theirs, so the next round we join must be a
			// Restart (the dirty bit rides our next Ready frame).
			n.mu.Lock()
			n.dirty = true
			n.mu.Unlock()
			n.logf("rank %d: round %d aborted: %v", n.rank, bm.round, err)
			return r, nil
		}
	}
	if bm.restart {
		// A completed Restart round re-derives all shared state; any
		// abort-induced divergence is healed.
		n.mu.Lock()
		n.dirty = false
		n.mu.Unlock()
	}
	n.stats.rounds.Add(1)
	n.stats.collectiveNs.Add(r.CollectiveNs)
	n.stats.roundLat.Record(time.Since(start))
	return r, nil
}

// barrier runs the Ready/Begin handshake and returns the Begin this node
// must act on. Followers (re-)send Ready whenever the believed coordinator
// or the membership epoch changes, so coordinator failover mid-barrier
// converges; the coordinator collects Readys from every live member, then
// assigns the round. Errors only on Close.
func (n *Node) barrier() (*beginMsg, error) {
	readySentTo := -1
	readyEpoch := uint64(0)
	n.mu.Lock()
	for {
		if n.closed {
			n.mu.Unlock()
			return nil, ErrClosed
		}
		if bm := n.takeBeginLocked(); bm != nil {
			targets := n.beginTargetsLocked(bm)
			n.mu.Unlock()
			n.sendBegin(bm, targets)
			return bm, nil
		}
		leader := n.leaderLocked()
		if leader == n.rank {
			n.readySet[n.rank] = n.dirty
			if n.allReadyLocked() {
				bm := n.issueBeginLocked()
				targets := n.beginTargetsLocked(bm)
				n.mu.Unlock()
				n.sendBegin(bm, targets)
				return bm, nil
			}
		} else if readySentTo != leader || readyEpoch != n.epoch {
			readySentTo, readyEpoch = leader, n.epoch
			p := n.peers[leader]
			h := &header{Type: frameReady, Sender: uint32(n.rank)}
			if n.dirty {
				h.Flags |= flagDirty
			}
			n.mu.Unlock()
			// A failed send means the coordinator is dying; the failure
			// detector will bump the epoch and we re-send to its successor.
			p.send(n, h, nil, n.cfg.WriteTimeout)
			n.mu.Lock()
			continue
		}
		n.cond.Wait()
	}
}

// takeBeginLocked consumes a pending Begin if this node is in its view.
// Begins for rounds already taken, or views excluding this rank, are
// dropped (the latter means the coordinator declared us dead while our
// Ready was in flight; we keep waiting for a view that includes us).
func (n *Node) takeBeginLocked() *beginMsg {
	bm := n.begin
	if bm == nil {
		return nil
	}
	if bm.round <= n.lastRound {
		n.begin = nil
		return nil
	}
	if bm.view&(1<<uint(n.rank)) == 0 {
		n.begin = nil
		return nil
	}
	n.begin = nil
	n.lastRound = bm.round
	n.prevView = bm.view
	return bm
}

// allReadyLocked reports whether every live member (including self) has
// announced Ready. Presence in readySet is what counts — the value is the
// member's dirty bit.
func (n *Node) allReadyLocked() bool {
	for r, p := range n.peers {
		alive := r == n.rank || (p != nil && p.alive)
		if _, ready := n.readySet[r]; alive && !ready {
			return false
		}
	}
	return true
}

// issueBeginLocked assigns the next round over the current live view. The
// restart flag is the heart of churn recovery: it is set whenever the view
// differs from the previous round's — or any participant arrived dirty
// (its copy of an earlier round aborted while others may have completed
// it) — telling every participant to re-derive the shared central model
// from the consensus sum instead of updating it incrementally.
func (n *Node) issueBeginLocked() *beginMsg {
	view := n.aliveViewLocked()
	restart := view != n.prevView
	for r, dirty := range n.readySet {
		if dirty && view&(1<<uint(r)) != 0 {
			restart = true
		}
	}
	bm := &beginMsg{round: n.nextRound, view: view, restart: restart}
	n.nextRound++
	n.lastRound = bm.round
	n.prevView = view
	for r := range n.readySet {
		if view&(1<<uint(r)) != 0 {
			delete(n.readySet, r)
		}
	}
	return bm
}

// beginTargetsLocked lists the peers a coordinator must announce bm to
// (nil when this node is a follower that merely consumed a received
// Begin — only the issuer fans the announcement out).
func (n *Node) beginTargetsLocked(bm *beginMsg) []*peer {
	if n.leaderLocked() != n.rank {
		return nil
	}
	var targets []*peer
	for _, r := range ranksOf(bm.view) {
		if r != n.rank {
			targets = append(targets, n.peers[r])
		}
	}
	return targets
}

func (n *Node) sendBegin(bm *beginMsg, targets []*peer) {
	if len(targets) == 0 {
		return
	}
	h := &header{Type: frameBegin, Sender: uint32(n.rank), Round: bm.round, Aux: bm.view}
	if bm.restart {
		h.Flags |= flagRestart
	}
	for _, p := range targets {
		p.send(n, h, nil, n.cfg.WriteTimeout)
	}
}

// abortRoundPeers tells the rest of the view this node gave up on the
// round, so participants still blocked on our chunks abort too instead of
// waiting for frames that will never come. suspects (a rank bitmap, zero
// when the abort was a plain membership change) names peers our watchdog
// caught stalling; receivers quarantine and cut them on arrival.
func (n *Node) abortRoundPeers(bm *beginMsg, view []int, suspects uint64) {
	h := &header{Type: frameAbort, Sender: uint32(n.rank), Round: bm.round, Aux: suspects}
	for _, r := range view {
		if r == n.rank {
			continue
		}
		p := n.peers[r]
		n.mu.Lock()
		alive := p.alive
		n.mu.Unlock()
		if alive {
			p.send(n, h, nil, time.Second)
		}
	}
}

// sendData ships one collective chunk segment; a write failure aborts the
// round.
func (n *Node) sendData(p *peer, round uint64, phase byte, seg, step int, chunk []float32) error {
	h := &header{Type: frameData, Sender: uint32(n.rank), Round: round, Aux: dataAux(phase, seg, step)}
	if err := p.send(n, h, f32Bytes(chunk), n.cfg.WriteTimeout); err != nil {
		return errAborted
	}
	return nil
}

// recvData waits for the addressed chunk segment from p, dropping stale
// frames from earlier (aborted) rounds. It gives up when p dies, the round
// is aborted by another participant, or the node closes. The returned
// buffer is pool-owned.
func (n *Node) recvData(p *peer, round uint64, phase byte, seg, step int, want int) ([]float32, error) {
	// The watchdog arms once per expected segment. Heartbeats keep a frozen
	// peer alive to the failure detector forever; this timer is what turns
	// "alive but silent inside the collective" into an abort instead of a
	// cluster-wide hang — and arming it per segment means a peer that
	// freezes mid-pipeline (some segments delivered, the rest never coming)
	// is caught just as fast as one that never starts. The stall's direct
	// victim fires first (downstream ranks hear the Abort well before their
	// own timers expire), so the suspect it names is the actual stalled
	// peer, not a healthy one.
	watchdog := time.NewTimer(n.cfg.RoundTimeout)
	defer watchdog.Stop()
	// take classifies one mailbox message: stale frames from earlier rounds
	// are dropped (done=false), a mismatched frame means protocol
	// divergence (e.g. the peer is in a different round than we are after
	// an asymmetric view split) and aborts — the next restart round
	// re-aligns everyone.
	take := func(m dataMsg) (buf []float32, done bool, err error) {
		if m.round < round {
			n.pool.Put(m.buf)
			return nil, false, nil
		}
		if m.round != round || m.phase != phase || m.seg != seg || m.step != step || len(m.buf) != want {
			n.pool.Put(m.buf)
			return nil, true, errAborted
		}
		return m.buf, true, nil
	}
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return nil, ErrClosed
		}
		if n.abortRound >= round {
			n.mu.Unlock()
			return nil, errAborted
		}
		alive := p.alive
		ch := n.notifyCh
		n.mu.Unlock()
		if !alive {
			// The peer is down — but its read loop dispatched every frame
			// in order before reporting the death, so anything it sent
			// first is already in the mailbox. Drain that before giving
			// up: a node that completes the round and leaves gracefully
			// must not abort it for the participants still receiving.
			select {
			case m := <-p.data:
				if buf, done, err := take(m); done {
					return buf, err
				}
				continue
			default:
				return nil, errAborted
			}
		}
		select {
		case m := <-p.data:
			if buf, done, err := take(m); done {
				return buf, err
			}
		case <-ch:
			// Membership or abort state changed; re-check.
		case <-watchdog.C:
			n.stats.watchdogFires.Add(1)
			n.quarantinePeer(p, "stalled the round past the watchdog")
			n.killConn(p)
			return nil, errStalled{rank: p.rank}
		}
	}
}

// segBounds returns segment j of the half-open range [lo,hi) split into S
// fixed parts: a pure function of the range, so every participant derives
// the same boundaries and skips the same zero-length segments. Degenerate
// chunks (len(buf) < k makes some ring chunks empty) fall out for free —
// all their segments are empty, so no frames are emitted at all.
func segBounds(lo, hi, j, S int) (int, int) {
	span := hi - lo
	return lo + j*span/S, lo + (j+1)*span/S
}

// ringStep is one pipelined ring step: the send-chunk's segments go out
// interleaved with receive+reduce of the recv-chunk's, so segment j is on
// the wire while segment j−1 is being summed — the socket never idles
// during addInto. Segment boundaries are fixed by the chunk range alone
// and addInto is element-wise, so the per-element reduction order (and
// with it cross-participant bit-identity) is exactly the unsegmented
// ring's for any segment count.
func (n *Node) ringStep(next, prev *peer, round uint64, phase byte, s int, buf []float32, sendLo, sendHi, recvLo, recvHi int, reduce bool) error {
	S := n.cfg.Segments
	for j := 0; j <= S; j++ {
		if j < S {
			lo, hi := segBounds(sendLo, sendHi, j, S)
			if hi > lo {
				if err := n.sendData(next, round, phase, j, s, buf[lo:hi]); err != nil {
					return err
				}
			}
		}
		if j > 0 {
			lo, hi := segBounds(recvLo, recvHi, j-1, S)
			if hi == lo {
				continue
			}
			in, err := n.recvData(prev, round, phase, j-1, s, hi-lo)
			if err != nil {
				return err
			}
			if reduce {
				addInto(buf[lo:hi], in)
			} else {
				copy(buf[lo:hi], in)
			}
			n.pool.Put(in)
		}
	}
	return nil
}

// ringAllReduce runs the bandwidth-optimal ring: k−1 reduce-scatter steps
// in which each node accumulates one chunk, then k−1 all-gather steps that
// circulate the reduced chunks verbatim. Each chunk is summed at exactly
// one node in ring order, so every participant ends with identical bytes.
func (n *Node) ringAllReduce(bm *beginMsg, view []int, buf []float32) error {
	k := len(view)
	me := rankIndex(view, n.rank)
	next := n.peers[view[(me+1)%k]]
	prev := n.peers[view[(me-1+k)%k]]
	bounds := func(c int) (int, int) { return c * len(buf) / k, (c + 1) * len(buf) / k }

	rs := time.Now()
	for s := 0; s < k-1; s++ {
		sendLo, sendHi := bounds((me - s + k) % k)
		recvLo, recvHi := bounds((me - s - 1 + k) % k)
		if err := n.ringStep(next, prev, bm.round, phaseReduceScatter, s, buf, sendLo, sendHi, recvLo, recvHi, true); err != nil {
			return err
		}
	}
	n.stats.reduceScatterNs.Add(time.Since(rs).Nanoseconds())
	ag := time.Now()
	for s := 0; s < k-1; s++ {
		sendLo, sendHi := bounds((me + 1 - s + k) % k)
		recvLo, recvHi := bounds((me - s + k) % k)
		if err := n.ringStep(next, prev, bm.round, phaseAllGather, s, buf, sendLo, sendHi, recvLo, recvHi, false); err != nil {
			return err
		}
	}
	n.stats.allGatherNs.Add(time.Since(ag).Nanoseconds())
	return nil
}

// treeAllReduce runs the latency-optimal binomial tree rooted at the
// lowest view index: ⌈log2 k⌉ reduce steps toward the root, then the
// mirror broadcast of the finished sum. Only the root sums, so the
// broadcast bytes are identical everywhere by construction. Every link
// transfer is segmented: during reduce, segment j+1 is in flight while the
// parent sums segment j; during broadcast, a relay forwards each segment
// to its subtree before the next one arrives, so the sum streams down the
// tree instead of store-and-forwarding whole models.
func (n *Node) treeAllReduce(bm *beginMsg, view []int, buf []float32) error {
	k := len(view)
	me := rankIndex(view, n.rank)
	rs := time.Now()
	for b := 1; b < k; b <<= 1 {
		if me&b != 0 {
			// Non-root: ship the partial sum up, then receive and relay the
			// finished sum.
			if err := n.sendSegments(n.peers[view[me-b]], bm.round, phaseTreeReduce, b, buf); err != nil {
				return err
			}
			n.stats.reduceScatterNs.Add(time.Since(rs).Nanoseconds())
			ag := time.Now()
			err := n.treeRecvRelay(bm, view, me, b, buf)
			n.stats.allGatherNs.Add(time.Since(ag).Nanoseconds())
			return err
		}
		if me+b < k {
			if err := n.recvSegmentsAdd(n.peers[view[me+b]], bm.round, phaseTreeReduce, b, buf); err != nil {
				return err
			}
		}
	}
	n.stats.reduceScatterNs.Add(time.Since(rs).Nanoseconds())
	// Root: stream the finished sum down the same tree.
	span := 1
	for span < k {
		span <<= 1
	}
	ag := time.Now()
	err := n.treeBcastRoot(bm, view, me, span, buf)
	n.stats.allGatherNs.Add(time.Since(ag).Nanoseconds())
	return err
}

// sendSegments ships buf to p segment by segment under one (phase, step)
// address. Back-to-back segment writes keep the link saturated while the
// receiver sums earlier segments.
func (n *Node) sendSegments(p *peer, round uint64, phase byte, step int, buf []float32) error {
	S := n.cfg.Segments
	for j := 0; j < S; j++ {
		lo, hi := segBounds(0, len(buf), j, S)
		if hi == lo {
			continue
		}
		if err := n.sendData(p, round, phase, j, step, buf[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// recvSegmentsAdd accumulates p's segmented transfer into buf: while
// segment j is summed here, segment j+1 is already in flight (the peer's
// read loop drains the socket independently of this call).
func (n *Node) recvSegmentsAdd(p *peer, round uint64, phase byte, step int, buf []float32) error {
	S := n.cfg.Segments
	for j := 0; j < S; j++ {
		lo, hi := segBounds(0, len(buf), j, S)
		if hi == lo {
			continue
		}
		in, err := n.recvData(p, round, phase, j, step, hi-lo)
		if err != nil {
			return err
		}
		addInto(buf[lo:hi], in)
		n.pool.Put(in)
	}
	return nil
}

// treeRecvRelay is the non-root broadcast path: receive the finished sum
// from the parent segment by segment, relaying each segment to our
// broadcast children (offsets below our own parent distance b) before the
// next segment arrives — the pipelined broadcast.
func (n *Node) treeRecvRelay(bm *beginMsg, view []int, me, b int, buf []float32) error {
	parent := n.peers[view[me-b]]
	k := len(view)
	S := n.cfg.Segments
	for j := 0; j < S; j++ {
		lo, hi := segBounds(0, len(buf), j, S)
		if hi == lo {
			continue
		}
		in, err := n.recvData(parent, bm.round, phaseTreeBcast, j, b, hi-lo)
		if err != nil {
			return err
		}
		copy(buf[lo:hi], in)
		n.pool.Put(in)
		for c := b >> 1; c >= 1; c >>= 1 {
			if me+c < k {
				if err := n.sendData(n.peers[view[me+c]], bm.round, phaseTreeBcast, j, c, buf[lo:hi]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// treeBcastRoot streams the finished sum from the root: segment j goes to
// every child before segment j+1, so a child is already relaying j down
// its subtree while the root writes j+1.
func (n *Node) treeBcastRoot(bm *beginMsg, view []int, me, below int, buf []float32) error {
	k := len(view)
	S := n.cfg.Segments
	for j := 0; j < S; j++ {
		lo, hi := segBounds(0, len(buf), j, S)
		if hi == lo {
			continue
		}
		for b := below >> 1; b >= 1; b >>= 1 {
			if me+b < k {
				if err := n.sendData(n.peers[view[me+b]], bm.round, phaseTreeBcast, j, b, buf[lo:hi]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func rankIndex(view []int, rank int) int {
	for i, r := range view {
		if r == rank {
			return i
		}
	}
	return -1
}

// addInto accumulates src into dst element-wise. Plain sequential adds:
// the reduction order must be identical on every participant, so no
// reordering tricks.
func addInto(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// nodeStats is the transport's lock-free counter block.
type nodeStats struct {
	bytesSent, bytesRecv   atomic.Int64
	framesSent, framesRecv atomic.Int64

	rounds, restartRounds atomic.Int64
	aborts                atomic.Int64
	reconnects            atomic.Int64
	peerDeaths            atomic.Int64

	watchdogFires atomic.Int64
	corruptFrames atomic.Int64
	quarantines   atomic.Int64

	snapshotsServed, snapshotsFetched atomic.Int64

	collectiveNs atomic.Int64
	roundLat     metrics.LatencyRecorder

	// Per-phase wall time: barrier wait, reduce-scatter (tree: reduce) and
	// all-gather (tree: broadcast) split of the collective.
	barrierNs       atomic.Int64
	reduceScatterNs atomic.Int64
	allGatherNs     atomic.Int64

	// Overlap accounting for asynchronous rounds: how much of the exchange
	// ran concurrently with computation (hidden) vs stalled the caller in
	// Wait (blocked).
	asyncRounds      atomic.Int64
	overlapHiddenNs  atomic.Int64
	overlapBlockedNs atomic.Int64
}

func (s *nodeStats) snapshot() metrics.TransportStats {
	out := metrics.TransportStats{
		BytesSent:        s.bytesSent.Load(),
		BytesRecv:        s.bytesRecv.Load(),
		FramesSent:       s.framesSent.Load(),
		FramesRecv:       s.framesRecv.Load(),
		Rounds:           s.rounds.Load(),
		RestartRounds:    s.restartRounds.Load(),
		Aborts:           s.aborts.Load(),
		Reconnects:       s.reconnects.Load(),
		PeerDeaths:       s.peerDeaths.Load(),
		WatchdogFires:    s.watchdogFires.Load(),
		CorruptFrames:    s.corruptFrames.Load(),
		Quarantines:      s.quarantines.Load(),
		SnapshotsServed:  s.snapshotsServed.Load(),
		SnapshotsFetched: s.snapshotsFetched.Load(),
		RoundMean:        s.roundLat.Mean(),
		RoundMax:         s.roundLat.Max(),
		BarrierWaitNs:    s.barrierNs.Load(),
		ReduceScatterNs:  s.reduceScatterNs.Load(),
		AllGatherNs:      s.allGatherNs.Load(),
		AsyncRounds:      s.asyncRounds.Load(),
		OverlapHiddenNs:  s.overlapHiddenNs.Load(),
		OverlapBlockedNs: s.overlapBlockedNs.Load(),
	}
	if s.roundLat.Count() > 0 {
		out.RoundP50 = s.roundLat.Quantile(0.50)
		out.RoundP99 = s.roundLat.Quantile(0.99)
		out.CollectiveMean = time.Duration(s.collectiveNs.Load() / s.roundLat.Count())
	}
	return out
}
