// Package transport is the cluster plane's real network: N crossbow
// processes exchanging the cross-server average model over TCP, where
// internal/cluster only *simulates* the exchange on a discrete-event clock.
// The simulated interconnect stays alive as the cost-model oracle this
// package is validated against (DESIGN.md §12).
//
// A Node owns one rank of a static peer list. Bootstrap is
// coordinator-less: every node listens on its own address and the
// lower-ranked end of each pair dials the higher-ranked end, with backoff,
// until the mesh is up; the same dial loops re-establish connections after
// a drop, so a restarted process rejoins without any central party.
//
// On the mesh the node runs three protocols:
//
//   - Membership: heartbeat frames flow on every connection; a peer whose
//     traffic stops for PeerTimeout is marked dead and the membership epoch
//     advances. Reconnection (or a Hello from a restarted process) marks it
//     alive again. Views are rank bitmaps; the lowest alive rank acts as
//     the round coordinator.
//   - Rounds: AllReduce callers barrier through a Ready/Begin handshake
//     with the current coordinator, which assigns the round number and the
//     participant view. A round whose view differs from the previous
//     round's is flagged Restart: every participant re-derives the cluster
//     average model from the consensus sum instead of updating it
//     incrementally, which heals any divergence a death, drop or rejoin
//     introduced (the §3.2 restart applied at the membership boundary).
//   - Collective: the participants all-reduce length-prefixed tensor
//     frames in ring or binomial-tree topology — the same two collectives
//     the cluster.Interconnect cost model prices. Both reduce in a fixed
//     rank order, so the summed bytes are identical on every participant.
//     Each transfer is split into Config.Segments pipelined segments so
//     summation (and tree relaying) hides under transmission; segment
//     boundaries are computed identically on both ends and addInto is
//     element-wise, so segmentation changes no bits.
//
// AllReduce blocks the caller for the whole round. BeginAllReduce is the
// asynchronous form: it hands the buffer to the node's exchange goroutine
// and returns a PendingRound handle (Poll/Wait), letting the caller
// compute while the identical round runs — the τ_global overlap of
// DESIGN.md §15. Stats meter the split between hidden and exposed
// exchange time.
//
// A rejoining process seeds its model by pulling a checkpoint-v3 snapshot
// from a live peer (FetchSnapshot) before training, then enters the next
// round like any other member.
package transport
