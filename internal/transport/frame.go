package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"unsafe"
)

// errWire marks definitive wire corruption — a decoded frame that can only
// come from a misbehaving or damaged sender (bad magic/version, impossible
// length, checksum mismatch), as opposed to a cleanly dying connection
// (EOF, truncation mid-frame). The read loop quarantines the peer on
// errWire; plain connection death just reconnects.
var errWire = errors.New("transport: wire corruption")

// Wire format: every message is one length-prefixed frame with a fixed
// 36-byte header followed by the payload. Integers are little-endian.
//
//	offset size field
//	0      4    magic "CBTF"
//	4      1    wire version
//	5      1    frame type
//	6      2    flags
//	8      4    sender rank
//	12     8    round (collective frames) / 0
//	20     8    aux (Begin: participant view bitmap; Data: phase|seg|step)
//	28     4    payload length in bytes
//	32     4    CRC-32 (IEEE) of the payload
//
// Tensor payloads are the raw native-endian float32 bytes of the model
// vector chunk — encoded and decoded through an unsafe slice view, so a
// send costs no copy and a receive lands directly in a pooled buffer.
//
// Version 2 repacked the Data aux field to address pipeline segments
// (collectives ship each transfer as several fixed-boundary segments so
// sends overlap receive+sum). v1 and v2 nodes must not mix: the version
// check rejects the handshake.
const (
	frameMagic  = "CBTF"
	wireVersion = 2
	headerSize  = 36
)

// Frame types.
const (
	frameHello     = byte(1)  // dialer's rank announcement
	frameHelloAck  = byte(2)  // acceptor's confirmation
	frameHeartbeat = byte(3)  // liveness beacon
	frameReady     = byte(4)  // member is at the round barrier
	frameBegin     = byte(5)  // coordinator opens a round (view in aux)
	frameData      = byte(6)  // tensor chunk of a collective step
	frameSnapReq   = byte(7)  // pull a model snapshot
	frameSnapResp  = byte(8)  // checkpoint-v3 payload (empty: none held)
	frameLeave     = byte(9)  // graceful departure
	frameAbort     = byte(10) // a participant aborted the round in `round`

	// Snapshot feed frames (publisher ↔ follower, DESIGN.md §16). These
	// reuse the CBTF framing on a dedicated connection — a follower is not
	// a rank of the collective mesh, so Sender carries the publisher-
	// assigned subscriber id instead of a rank.
	frameSubHello  = byte(11) // follower's base announcement (Round, Aux=params CRC)
	frameSnapFull  = byte(12) // full checkpoint-v3 snapshot payload
	frameSnapDelta = byte(13) // ckpt delta payload (CBOWDLTA)
	frameSubAck    = byte(14) // follower's applied state (Round, Aux=params CRC)
)

// Frame flags.
const (
	flagRestart = uint16(1) // Begin: view changed, re-derive z from consensus
	flagDirty   = uint16(2) // Ready: sender's last round aborted, force Restart
)

// header is the decoded fixed part of a frame.
type header struct {
	Type   byte
	Flags  uint16
	Sender uint32
	Round  uint64
	Aux    uint64
	Length uint32
}

// dataAux packs a collective Data frame's addressing into the aux field:
// the phase (reduce-scatter, all-gather, tree-reduce, tree-broadcast), the
// pipeline segment within the transfer, and the step index within the
// phase.
func dataAux(phase byte, seg, step int) uint64 {
	return uint64(phase)<<56 | uint64(uint16(seg))<<40 | uint64(uint32(step))
}

func dataPhase(aux uint64) byte { return byte(aux >> 56) }
func dataSeg(aux uint64) int    { return int(uint16(aux >> 40)) }
func dataStep(aux uint64) int   { return int(uint32(aux)) }

// Collective phases.
const (
	phaseReduceScatter = byte(1)
	phaseAllGather     = byte(2)
	phaseTreeReduce    = byte(3)
	phaseTreeBcast     = byte(4)
)

// putHeader serialises h (with the payload's length and CRC already set by
// the caller) into buf.
func putHeader(buf *[headerSize]byte, h *header, crc uint32) {
	copy(buf[0:4], frameMagic)
	buf[4] = wireVersion
	buf[5] = h.Type
	binary.LittleEndian.PutUint16(buf[6:8], h.Flags)
	binary.LittleEndian.PutUint32(buf[8:12], h.Sender)
	binary.LittleEndian.PutUint64(buf[12:20], h.Round)
	binary.LittleEndian.PutUint64(buf[20:28], h.Aux)
	binary.LittleEndian.PutUint32(buf[28:32], h.Length)
	binary.LittleEndian.PutUint32(buf[32:36], crc)
}

// parseHeader validates magic and version and decodes the fixed fields,
// returning the payload CRC for the caller to verify.
func parseHeader(buf *[headerSize]byte) (header, uint32, error) {
	if string(buf[0:4]) != frameMagic {
		return header{}, 0, fmt.Errorf("%w: bad frame magic %q", errWire, buf[0:4])
	}
	if buf[4] != wireVersion {
		return header{}, 0, fmt.Errorf("%w: unsupported wire version %d", errWire, buf[4])
	}
	h := header{
		Type:   buf[5],
		Flags:  binary.LittleEndian.Uint16(buf[6:8]),
		Sender: binary.LittleEndian.Uint32(buf[8:12]),
		Round:  binary.LittleEndian.Uint64(buf[12:20]),
		Aux:    binary.LittleEndian.Uint64(buf[20:28]),
		Length: binary.LittleEndian.Uint32(buf[28:32]),
	}
	return h, binary.LittleEndian.Uint32(buf[32:36]), nil
}

// writeFrame serialises one frame. The caller holds the connection's write
// lock; payload may be nil for control frames. Returns the total bytes
// written.
func writeFrame(w io.Writer, h *header, payload []byte) (int, error) {
	h.Length = uint32(len(payload))
	var hdr [headerSize]byte
	putHeader(&hdr, h, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return headerSize, err
		}
	}
	return headerSize + len(payload), nil
}

// writeFrameCorrupt is the fault injector's bit-flip: the header carries
// the CRC of the CLEAN payload, but bit `bit` of the payload goes out
// inverted — exactly what a damaged NIC or buggy peer produces, and what
// the receiver's checksum must reject. The caller's payload is not
// mutated.
func writeFrameCorrupt(w io.Writer, h *header, payload []byte, bit int) (int, error) {
	h.Length = uint32(len(payload))
	var hdr [headerSize]byte
	putHeader(&hdr, h, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	i := bit / 8
	if _, err := w.Write(payload[:i]); err != nil {
		return headerSize, err
	}
	flipped := [1]byte{payload[i] ^ 1<<uint(bit%8)}
	if _, err := w.Write(flipped[:]); err != nil {
		return headerSize + i, err
	}
	if _, err := w.Write(payload[i+1:]); err != nil {
		return headerSize + i + 1, err
	}
	return headerSize + len(payload), nil
}

// writeFrameTruncated is the fault injector's mid-write death: a header
// promising the full payload followed by only `keep` bytes of it, after
// which the caller resets the connection. The receiver's ReadFull blocks
// until the reset and reports a truncated frame.
func writeFrameTruncated(w io.Writer, h *header, payload []byte, keep int) (int, error) {
	h.Length = uint32(len(payload))
	var hdr [headerSize]byte
	putHeader(&hdr, h, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload[:keep]); err != nil {
		return headerSize, err
	}
	return headerSize + keep, nil
}

// readFrame reads one frame from r, verifying the checksum. Payloads land
// in a buffer from pool (sized in float32 elements, so tensor payloads are
// aligned for the zero-copy float view); the caller must Put it back. The
// payload slice is nil for empty frames. Returns the total bytes read.
func readFrame(r io.Reader, maxPayload int, pool *bufPool) (header, []float32, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return header{}, nil, 0, err
	}
	h, wantCRC, err := parseHeader(&hdr)
	if err != nil {
		return header{}, nil, 0, err
	}
	if int(h.Length) > maxPayload {
		return header{}, nil, 0, fmt.Errorf("%w: frame payload %d exceeds limit %d", errWire, h.Length, maxPayload)
	}
	if h.Length == 0 {
		if wantCRC != 0 {
			return header{}, nil, 0, fmt.Errorf("%w: empty frame with non-zero checksum", errWire)
		}
		return h, nil, headerSize, nil
	}
	elems := (int(h.Length) + 3) / 4
	buf := pool.Get(elems)
	b := f32Bytes(buf)[:h.Length]
	if _, err := io.ReadFull(r, b); err != nil {
		pool.Put(buf)
		return header{}, nil, 0, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(b) != wantCRC {
		pool.Put(buf)
		return header{}, nil, 0, fmt.Errorf("%w: frame checksum mismatch (type %d from rank %d)", errWire, h.Type, h.Sender)
	}
	return h, buf, headerSize + int(h.Length), nil
}

// f32Bytes views a float32 slice as its raw bytes without copying (the
// same reinterpret idiom as tensor.AsInt32: identical size and alignment,
// aliased storage). Encoding is native-endian; every rank of a cluster
// runs the same binary on the same architecture, and the checksum rejects
// accidental cross-endian mixes.
func f32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// payloadF32 clips a pooled payload buffer to the tensor element count of
// a Data frame.
func payloadF32(buf []float32, h *header) ([]float32, error) {
	if h.Length%4 != 0 {
		return nil, fmt.Errorf("transport: tensor payload of %d bytes is not float32-aligned", h.Length)
	}
	return buf[:h.Length/4], nil
}

// bufPool is a free-list of float32 buffers for frame payloads — the
// internal/serve free-list idiom with a size threshold: Get returns a
// buffer with capacity at least elems, Put recycles it. Round after round
// the collective cycles through the same few chunk sizes, so the pool
// reaches steady state after the first round and the receive path stops
// allocating.
type bufPool struct {
	mu   sync.Mutex
	free [][]float32
}

// Get returns a buffer of the given element length.
func (p *bufPool) Get(elems int) []float32 {
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= elems {
			b := p.free[i]
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.mu.Unlock()
			return b[:elems]
		}
	}
	p.mu.Unlock()
	return make([]float32, elems)
}

// Put recycles a buffer obtained from Get. The free list is bounded so a
// burst of odd-sized frames cannot pin memory forever.
func (p *bufPool) Put(b []float32) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free) < 32 {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}
