package transport

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip pins the wire format: header fields and tensor
// payloads survive encode/decode, and the byte layout starts with the
// magic and version.
func TestFrameRoundTrip(t *testing.T) {
	payload := []float32{1.5, -2.25, 3.125, 0, 42}
	h := header{Type: frameData, Flags: flagRestart, Sender: 3, Round: 77, Aux: dataAux(phaseAllGather, 5, 9)}
	var b bytes.Buffer
	wrote, err := writeFrame(&b, &h, f32Bytes(payload))
	if err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if wrote != headerSize+len(payload)*4 {
		t.Fatalf("wrote %d bytes, want %d", wrote, headerSize+len(payload)*4)
	}
	raw := b.Bytes()
	if string(raw[:4]) != frameMagic || raw[4] != wireVersion {
		t.Fatalf("frame prefix = %q version %d", raw[:4], raw[4])
	}

	var pool bufPool
	got, buf, read, err := readFrame(&b, 1<<20, &pool)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if read != wrote {
		t.Fatalf("read %d bytes, wrote %d", read, wrote)
	}
	if got.Type != h.Type || got.Flags != h.Flags || got.Sender != h.Sender || got.Round != h.Round || got.Aux != h.Aux {
		t.Fatalf("header mismatch: got %+v want %+v", got, h)
	}
	if dataPhase(got.Aux) != phaseAllGather || dataSeg(got.Aux) != 5 || dataStep(got.Aux) != 9 {
		t.Fatalf("aux decode: phase %d seg %d step %d", dataPhase(got.Aux), dataSeg(got.Aux), dataStep(got.Aux))
	}
	f32, err := payloadF32(buf, &got)
	if err != nil {
		t.Fatalf("payloadF32: %v", err)
	}
	for i, v := range payload {
		if f32[i] != v {
			t.Fatalf("payload[%d] = %v, want %v", i, f32[i], v)
		}
	}
	pool.Put(buf)
}

// TestFrameEmpty round-trips a control frame with no payload.
func TestFrameEmpty(t *testing.T) {
	var b bytes.Buffer
	h := header{Type: frameHeartbeat, Sender: 1}
	if _, err := writeFrame(&b, &h, nil); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	var pool bufPool
	got, buf, _, err := readFrame(&b, 0, &pool)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if buf != nil || got.Length != 0 || got.Type != frameHeartbeat {
		t.Fatalf("empty frame decoded as %+v payload %v", got, buf)
	}
}

// TestFrameCorruption verifies the integrity checks: flipped payload bits
// fail the CRC, a bad magic and a future version are rejected, and an
// oversized frame is refused before any payload allocation.
func TestFrameCorruption(t *testing.T) {
	var pool bufPool
	mk := func() []byte {
		var b bytes.Buffer
		h := header{Type: frameData, Sender: 2, Round: 5}
		writeFrame(&b, &h, f32Bytes([]float32{1, 2, 3}))
		return b.Bytes()
	}

	raw := mk()
	raw[headerSize+1] ^= 0x40 // corrupt payload
	if _, _, _, err := readFrame(bytes.NewReader(raw), 1<<20, &pool); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload: err = %v, want checksum mismatch", err)
	}

	raw = mk()
	raw[0] = 'X'
	if _, _, _, err := readFrame(bytes.NewReader(raw), 1<<20, &pool); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	raw = mk()
	raw[4] = wireVersion + 1
	if _, _, _, err := readFrame(bytes.NewReader(raw), 1<<20, &pool); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v", err)
	}

	raw = mk()
	if _, _, _, err := readFrame(bytes.NewReader(raw), 4, &pool); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized: err = %v", err)
	}

	raw = mk()
	if _, _, _, err := readFrame(bytes.NewReader(raw[:headerSize+5]), 1<<20, &pool); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated: err = %v", err)
	}
}

// TestFrameErrWireClassification pins the corruption taxonomy the read
// loop's quarantine decision rests on: every decode failure that can only
// come from a damaged or misbehaving sender wraps errWire, while
// truncation (indistinguishable from a peer dying mid-write) and EOF do
// not — those must stay plain reconnectable connection deaths.
func TestFrameErrWireClassification(t *testing.T) {
	var pool bufPool
	mk := func() []byte {
		var b bytes.Buffer
		h := header{Type: frameData, Sender: 2, Round: 5}
		writeFrame(&b, &h, f32Bytes([]float32{1, 2, 3}))
		return b.Bytes()
	}

	wire := map[string]func() []byte{
		"checksum": func() []byte { r := mk(); r[headerSize] ^= 1; return r },
		"magic":    func() []byte { r := mk(); r[0] = 'X'; return r },
		"version":  func() []byte { r := mk(); r[4] = wireVersion + 1; return r },
		"empty frame with non-zero checksum": func() []byte {
			var b bytes.Buffer
			writeFrame(&b, &header{Type: frameHeartbeat}, nil)
			r := b.Bytes()
			r[32] = 0xFF // forge a checksum onto a zero-length frame
			return r
		},
	}
	for name, build := range wire {
		_, _, _, err := readFrame(bytes.NewReader(build()), 1<<20, &pool)
		if err == nil || !errors.Is(err, errWire) {
			t.Fatalf("%s: err = %v, want errWire", name, err)
		}
	}
	// Oversize is errWire too, but checked against the configured limit.
	if _, _, _, err := readFrame(bytes.NewReader(mk()), 4, &pool); !errors.Is(err, errWire) {
		t.Fatalf("oversized: err = %v, want errWire", err)
	}

	// The two clean-death shapes must NOT be errWire.
	raw := mk()
	if _, _, _, err := readFrame(bytes.NewReader(raw[:headerSize+5]), 1<<20, &pool); err == nil || errors.Is(err, errWire) {
		t.Fatalf("truncated payload: err = %v, want non-errWire failure", err)
	}
	if _, _, _, err := readFrame(bytes.NewReader(raw[:10]), 1<<20, &pool); err == nil || errors.Is(err, errWire) {
		t.Fatalf("truncated header: err = %v, want non-errWire failure", err)
	}
}

// TestFramePoolRestitution verifies the decode error paths return their
// pooled payload buffer: after a checksum failure and a truncated payload
// the pool must hold the buffer again, or a fault storm would leak one
// buffer per bad frame.
func TestFramePoolRestitution(t *testing.T) {
	var pool bufPool
	for _, breakFrame := range []func([]byte) []byte{
		func(r []byte) []byte { r[headerSize] ^= 1; return r }, // checksum failure
		func(r []byte) []byte { return r[:len(r)-8] },          // truncated payload
	} {
		var b bytes.Buffer
		h := header{Type: frameData, Sender: 1}
		writeFrame(&b, &h, f32Bytes(make([]float32, 64)))
		readFrame(bytes.NewReader(breakFrame(b.Bytes())), 1<<20, &pool)

		pool.mu.Lock()
		n := len(pool.free)
		pool.mu.Unlock()
		if n != 1 {
			t.Fatalf("pool holds %d buffers after failed decode, want 1", n)
		}
		pool.Get(64) // drain for the next iteration
	}
}

// TestWriteFrameCorrupt pins the injector's bit-flip writer: the wire
// carries the clean payload's checksum over a payload with exactly one
// inverted bit, the receiver's CRC rejects it as errWire, and the caller's
// buffer is never mutated.
func TestWriteFrameCorrupt(t *testing.T) {
	payload := []float32{1, 2, 3, 4}
	clean := f32Bytes(payload)
	for _, bit := range []int{0, 7, 8, 63, len(clean)*8 - 1} {
		var b bytes.Buffer
		h := header{Type: frameData, Sender: 1, Round: 3}
		wrote, err := writeFrameCorrupt(&b, &h, clean, bit)
		if err != nil || wrote != headerSize+len(clean) {
			t.Fatalf("bit %d: wrote %d, err %v", bit, wrote, err)
		}
		raw := b.Bytes()
		if got := raw[headerSize+bit/8] ^ clean[bit/8]; got != 1<<uint(bit%8) {
			t.Fatalf("bit %d: wire byte differs by %#x, want single flipped bit", bit, got)
		}
		if payload[0] != 1 || payload[3] != 4 {
			t.Fatalf("bit %d: caller's payload mutated: %v", bit, payload)
		}
		var pool bufPool
		if _, _, _, err := readFrame(&b, 1<<20, &pool); !errors.Is(err, errWire) {
			t.Fatalf("bit %d: readFrame err = %v, want errWire", bit, err)
		}
	}
}

// TestWriteFrameTruncated pins the injector's mid-write death: a header
// promising the full payload followed by a prefix of it. The receiver
// must report a plain truncation (reconnect), not errWire (quarantine).
func TestWriteFrameTruncated(t *testing.T) {
	payload := f32Bytes([]float32{1, 2, 3, 4})
	var b bytes.Buffer
	h := header{Type: frameData, Sender: 1}
	wrote, err := writeFrameTruncated(&b, &h, payload, 5)
	if err != nil || wrote != headerSize+5 {
		t.Fatalf("wrote %d, err %v", wrote, err)
	}
	var pool bufPool
	_, _, _, rerr := readFrame(&b, 1<<20, &pool)
	if rerr == nil || errors.Is(rerr, errWire) || !strings.Contains(rerr.Error(), "truncated") {
		t.Fatalf("readFrame err = %v, want plain truncation", rerr)
	}
}

// TestFrameReaderStops ensures a clean EOF mid-header surfaces as an error
// rather than a phantom frame.
func TestFrameReaderStops(t *testing.T) {
	var pool bufPool
	if _, _, _, err := readFrame(bytes.NewReader(nil), 0, &pool); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestBufPool pins the free-list contract: a recycled buffer is reused
// when large enough, and Get always returns the exact requested length.
func TestBufPool(t *testing.T) {
	var pool bufPool
	a := pool.Get(100)
	if len(a) != 100 {
		t.Fatalf("Get(100) returned len %d", len(a))
	}
	pool.Put(a)
	b := pool.Get(50)
	if len(b) != 50 || cap(b) < 100 {
		t.Fatalf("Get(50) after Put(cap 100): len %d cap %d, want recycled buffer", len(b), cap(b))
	}
	c := pool.Get(200)
	if len(c) != 200 {
		t.Fatalf("Get(200) returned len %d", len(c))
	}
}
