package transport

import (
	"net"
	"sync"
	"time"
)

// peer is the per-rank connection slot. The slot is permanent (it survives
// reconnects); the connection inside it is replaced as the peer comes and
// goes. Liveness and the conn pointer are guarded by the owning Node's mu;
// wmu serialises frame writes on whatever connection is current.
type peer struct {
	rank int
	addr string

	wmu sync.Mutex

	// Guarded by Node.mu.
	conn     net.Conn
	alive    bool
	gen      uint64 // bumped per attach, so stale read loops detach cleanly
	lastSeen time.Time

	// data is the mailbox of collective tensor frames from this peer.
	data chan dataMsg
}

// dataMsg is one received collective chunk; buf is pool-owned and must be
// returned by the consumer.
type dataMsg struct {
	round uint64
	phase byte
	step  int
	buf   []float32
}

// send writes one frame to the peer's current connection. Write errors
// close the connection (the read loop then reports the peer down); callers
// treat an error as "peer unreachable right now".
func (p *peer) send(n *Node, h *header, payload []byte, timeout time.Duration) error {
	n.mu.Lock()
	conn := p.conn
	n.mu.Unlock()
	if conn == nil {
		return errNotConnected
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	bytes, err := writeFrame(conn, h, payload)
	if err != nil {
		conn.Close()
		return err
	}
	n.stats.bytesSent.Add(int64(bytes))
	n.stats.framesSent.Add(1)
	return nil
}

var errNotConnected = errTransient("transport: peer not connected")

type errTransient string

func (e errTransient) Error() string { return string(e) }

// acceptLoop admits incoming connections: each must open with a Hello from
// a lower-ranked peer (lower ranks dial higher ranks, so ownership of each
// pair's connection is unambiguous after a restart).
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		n.wg.Add(1)
		go n.handshakeAccept(conn)
	}
}

func (n *Node) handshakeAccept(conn net.Conn) {
	defer n.wg.Done()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, _, err := readFrame(conn, 0, &n.pool)
	if err != nil || h.Type != frameHello {
		conn.Close()
		return
	}
	n.pool.Put(payload)
	rank := int(h.Sender)
	if rank < 0 || rank >= len(n.peers) || rank >= n.rank || n.peers[rank] == nil {
		n.logf("rank %d: rejecting hello from rank %d", n.rank, rank)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	p := n.peers[rank]
	if err := p.sendOn(n, conn, &header{Type: frameHelloAck, Sender: uint32(n.rank)}); err != nil {
		conn.Close()
		return
	}
	n.attach(p, conn)
}

// sendOn writes a frame on an explicit connection (handshake time, before
// the conn is attached to the slot).
func (p *peer) sendOn(n *Node, conn net.Conn, h *header) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	bytes, err := writeFrame(conn, h, nil)
	if err != nil {
		return err
	}
	n.stats.bytesSent.Add(int64(bytes))
	n.stats.framesSent.Add(1)
	return nil
}

// dialLoop owns the connection to one higher-ranked peer: dial with
// exponential backoff while it is down, then sleep until the failure
// detector declares it down again. It is the only reconnect path, which is
// what lets a killed-and-restarted process rejoin with no coordinator.
func (n *Node) dialLoop(p *peer) {
	defer n.wg.Done()
	backoff := n.cfg.DialBackoff
	for {
		n.mu.Lock()
		for !n.closed && p.alive {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()

		conn, err := net.DialTimeout("tcp", p.addr, n.cfg.PeerTimeout)
		if err == nil {
			err = n.handshakeDial(p, conn)
		}
		if err != nil {
			time.Sleep(backoff)
			if backoff < 32*n.cfg.DialBackoff {
				backoff *= 2
			}
			continue
		}
		backoff = n.cfg.DialBackoff
	}
}

func (n *Node) handshakeDial(p *peer, conn net.Conn) error {
	if err := p.sendOn(n, conn, &header{Type: frameHello, Sender: uint32(n.rank)}); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, _, err := readFrame(conn, 0, &n.pool)
	if err != nil || h.Type != frameHelloAck || int(h.Sender) != p.rank {
		conn.Close()
		if err == nil {
			err = errNotConnected
		}
		return err
	}
	n.pool.Put(payload)
	conn.SetReadDeadline(time.Time{})
	n.attach(p, conn)
	return nil
}

// attach installs a fresh connection in the peer's slot, marks the peer
// alive, advances the membership epoch, and starts the read loop.
func (n *Node) attach(p *peer, conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		// A stale connection lingers (e.g. the peer restarted faster than
		// our failure detector fired). Replace it; its read loop exits on
		// the close and sees the bumped generation.
		p.conn.Close()
	}
	p.conn = conn
	p.gen++
	gen := p.gen
	wasAlive := p.alive
	p.alive = true
	p.lastSeen = time.Now()
	if wasAlive {
		n.stats.reconnects.Add(1)
	}
	n.bumpLocked()
	n.mu.Unlock()
	n.logf("rank %d: peer %d up", n.rank, p.rank)
	n.wg.Add(1)
	go n.readLoop(p, conn, gen)
}

// readLoop drains frames from one connection until it dies. It is the only
// reader, so collective consumers never touch the socket — which is also
// what makes the send-then-receive collectives deadlock-free: bytes are
// always drained off the wire into the mailbox even while the local
// collective is blocked writing.
func (n *Node) readLoop(p *peer, conn net.Conn, gen uint64) {
	defer n.wg.Done()
	for {
		h, payload, bytes, err := readFrame(conn, n.cfg.MaxPayload, &n.pool)
		if err != nil {
			n.peerDown(p, conn, gen)
			return
		}
		n.stats.bytesRecv.Add(int64(bytes))
		n.stats.framesRecv.Add(1)
		n.mu.Lock()
		if p.gen == gen {
			p.lastSeen = time.Now()
		}
		n.mu.Unlock()
		n.dispatch(p, h, payload)
	}
}

// peerDown records a dead connection. Only the generation that installed
// the connection may declare the peer dead — a newer connection in the
// slot means the peer already recovered.
func (n *Node) peerDown(p *peer, conn net.Conn, gen uint64) {
	conn.Close()
	n.mu.Lock()
	if p.gen != gen {
		n.mu.Unlock()
		return
	}
	p.conn = nil
	if p.alive {
		p.alive = false
		n.stats.peerDeaths.Add(1)
		n.bumpLocked()
		n.mu.Unlock()
		n.logf("rank %d: peer %d down", n.rank, p.rank)
		return
	}
	n.mu.Unlock()
}

// killConn force-closes a peer's current connection (Leave frames and the
// failure detector use it); the read loop then runs the peerDown path.
func (n *Node) killConn(p *peer) {
	n.mu.Lock()
	conn := p.conn
	n.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// heartbeatLoop beacons liveness on every live connection and acts as the
// failure detector: a peer silent for PeerTimeout gets its connection
// closed, which flows through peerDown and bumps the membership epoch.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for range ticker.C {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		var live, stale []*peer
		now := time.Now()
		for _, p := range n.peers {
			if p == nil || !p.alive {
				continue
			}
			if now.Sub(p.lastSeen) > n.cfg.PeerTimeout {
				stale = append(stale, p)
			} else {
				live = append(live, p)
			}
		}
		n.mu.Unlock()
		for _, p := range stale {
			n.logf("rank %d: peer %d heartbeat timeout", n.rank, p.rank)
			n.killConn(p)
		}
		hb := &header{Type: frameHeartbeat, Sender: uint32(n.rank)}
		for _, p := range live {
			p.send(n, hb, nil, n.cfg.HeartbeatEvery)
		}
	}
}

// leaderLocked returns the round coordinator: the lowest alive rank.
// Callers hold n.mu.
func (n *Node) leaderLocked() int {
	for r, p := range n.peers {
		if r == n.rank || (p != nil && p.alive) {
			return r
		}
	}
	return n.rank
}

// aliveViewLocked returns the bitmap of self plus all live peers.
func (n *Node) aliveViewLocked() uint64 {
	view := uint64(1) << uint(n.rank)
	for r, p := range n.peers {
		if p != nil && p.alive {
			view |= 1 << uint(r)
		}
	}
	return view
}

// ranksOf expands a view bitmap into a sorted rank slice.
func ranksOf(view uint64) []int {
	var ranks []int
	for r := 0; r < maxRanks; r++ {
		if view&(1<<uint(r)) != 0 {
			ranks = append(ranks, r)
		}
	}
	return ranks
}
