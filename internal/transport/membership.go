package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"crossbow/internal/chaos"
)

// peer is the per-rank connection slot. The slot is permanent (it survives
// reconnects); the connection inside it is replaced as the peer comes and
// goes. Liveness and the conn pointer are guarded by the owning Node's mu;
// wmu serialises frame writes on whatever connection is current.
type peer struct {
	rank int
	addr string

	wmu sync.Mutex

	// Guarded by Node.mu.
	conn     net.Conn
	alive    bool
	gen      uint64 // bumped per attach, so stale read loops detach cleanly
	lastSeen time.Time
	// quarUntil bars the peer from reconnecting until this instant: set
	// when it was caught corrupting frames or stalling a round. Both
	// reconnect paths honour it — our dial loop waits it out, and
	// handshakeAccept rejects the peer's own hello.
	quarUntil time.Time

	// data is the mailbox of collective tensor frames from this peer.
	data chan dataMsg
}

// dataMsg is one received collective chunk segment; buf is pool-owned and
// must be returned by the consumer.
type dataMsg struct {
	round uint64
	phase byte
	seg   int
	step  int
	buf   []float32
}

// send writes one frame to the peer's current connection. Write errors
// close the connection (the read loop then reports the peer down); callers
// treat an error as "peer unreachable right now". When a chaos injector is
// configured it rules on the frame first — a dropped frame still returns
// nil, because that is what a real network does to the sender.
func (p *peer) send(n *Node, h *header, payload []byte, timeout time.Duration) error {
	n.mu.Lock()
	conn := p.conn
	n.mu.Unlock()
	if conn == nil {
		return errNotConnected
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	var fate chaos.Fate
	if n.cfg.Chaos != nil {
		fate = n.cfg.Chaos.Outgoing(n.rank, p.rank, frameClass(h.Type), len(payload))
		if fate.Delay > 0 {
			// Sleeping under wmu is deliberate: a delayed frame holds back
			// everything queued behind it on this link, like a slow wire.
			time.Sleep(fate.Delay)
		}
	}
	var bytes int
	var err error
	switch fate.Op {
	case chaos.Drop:
		return nil
	case chaos.Reset:
		conn.Close()
		return nil
	case chaos.Corrupt:
		bytes, err = writeFrameCorrupt(conn, h, payload, fate.Arg)
	case chaos.Truncate:
		if bytes, err = writeFrameTruncated(conn, h, payload, fate.Arg); err == nil {
			conn.Close()
		}
	case chaos.Dup:
		if bytes, err = writeFrame(conn, h, payload); err == nil {
			var more int
			more, err = writeFrame(conn, h, payload)
			bytes += more
		}
	default:
		bytes, err = writeFrame(conn, h, payload)
	}
	if err != nil {
		conn.Close()
		return err
	}
	n.stats.bytesSent.Add(int64(bytes))
	n.stats.framesSent.Add(1)
	return nil
}

// frameClass maps a frame type to the fault injector's coarse classes.
func frameClass(t byte) chaos.Class {
	switch t {
	case frameData:
		return chaos.Data
	case frameHeartbeat:
		return chaos.Heartbeat
	case frameSnapReq, frameSnapResp:
		return chaos.Snapshot
	default:
		return chaos.Control
	}
}

var errNotConnected = errTransient("transport: peer not connected")

type errTransient string

func (e errTransient) Error() string { return string(e) }

// acceptLoop admits incoming connections: each must open with a Hello from
// a lower-ranked peer (lower ranks dial higher ranks, so ownership of each
// pair's connection is unambiguous after a restart).
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		n.wg.Add(1)
		go n.handshakeAccept(conn)
	}
}

func (n *Node) handshakeAccept(conn net.Conn) {
	defer n.wg.Done()
	conn.SetReadDeadline(time.Now().Add(n.cfg.PeerTimeout))
	h, payload, _, err := readFrame(conn, 0, &n.pool)
	if err != nil || h.Type != frameHello {
		conn.Close()
		return
	}
	n.pool.Put(payload)
	rank := int(h.Sender)
	if rank < 0 || rank >= len(n.peers) || rank >= n.rank || n.peers[rank] == nil {
		n.logf("rank %d: rejecting hello from rank %d", n.rank, rank)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	p := n.peers[rank]
	n.mu.Lock()
	quarantined := time.Now().Before(p.quarUntil)
	n.mu.Unlock()
	if quarantined {
		n.logf("rank %d: rejecting hello from quarantined rank %d", n.rank, rank)
		conn.Close()
		return
	}
	if err := p.sendOn(n, conn, &header{Type: frameHelloAck, Sender: uint32(n.rank)}); err != nil {
		conn.Close()
		return
	}
	n.attach(p, conn)
}

// sendOn writes a frame on an explicit connection (handshake time, before
// the conn is attached to the slot).
func (p *peer) sendOn(n *Node, conn net.Conn, h *header) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	if n.cfg.Chaos != nil {
		fate := n.cfg.Chaos.Outgoing(n.rank, p.rank, chaos.Control, 0)
		if fate.Delay > 0 {
			time.Sleep(fate.Delay)
		}
		if fate.Op != chaos.Pass {
			// Handshake frames carry no payload to corrupt or truncate;
			// any adverse fate kills the nascent connection, which is how
			// an injected partition keeps the mesh from re-forming.
			conn.Close()
			return errNotConnected
		}
	}
	bytes, err := writeFrame(conn, h, nil)
	if err != nil {
		return err
	}
	n.stats.bytesSent.Add(int64(bytes))
	n.stats.framesSent.Add(1)
	return nil
}

// dialLoop owns the connection to one higher-ranked peer: dial with
// exponential backoff while it is down, then sleep until the failure
// detector declares it down again. It is the only reconnect path, which is
// what lets a killed-and-restarted process rejoin with no coordinator.
func (n *Node) dialLoop(p *peer) {
	defer n.wg.Done()
	backoff := n.cfg.DialBackoff
	for {
		n.mu.Lock()
		for !n.closed && p.alive {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		quar := time.Until(p.quarUntil)
		ch := n.notifyCh
		n.mu.Unlock()
		if quar > 0 {
			// The peer is quarantined: sit out the sentence before
			// redialing, but stay interruptible so Close doesn't hang on
			// a sleeping dial loop.
			select {
			case <-ch:
			case <-time.After(quar):
			}
			continue
		}

		conn, err := net.DialTimeout("tcp", p.addr, n.cfg.PeerTimeout)
		if err == nil {
			err = n.handshakeDial(p, conn)
		}
		if err != nil {
			// Jitter desynchronises the reconnect storm when one event
			// (say, a leader crash) disconnects every rank at once.
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2)+1)))
			if backoff < 32*n.cfg.DialBackoff {
				backoff *= 2
			}
			continue
		}
		backoff = n.cfg.DialBackoff
	}
}

func (n *Node) handshakeDial(p *peer, conn net.Conn) error {
	if err := p.sendOn(n, conn, &header{Type: frameHello, Sender: uint32(n.rank)}); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Now().Add(n.cfg.PeerTimeout))
	h, payload, _, err := readFrame(conn, 0, &n.pool)
	if err != nil || h.Type != frameHelloAck || int(h.Sender) != p.rank {
		conn.Close()
		if err == nil {
			err = errNotConnected
		}
		return err
	}
	n.pool.Put(payload)
	conn.SetReadDeadline(time.Time{})
	n.attach(p, conn)
	return nil
}

// attach installs a fresh connection in the peer's slot, marks the peer
// alive, advances the membership epoch, and starts the read loop.
func (n *Node) attach(p *peer, conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	n.mu.Lock()
	if n.closed || time.Now().Before(p.quarUntil) {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		// A stale connection lingers (e.g. the peer restarted faster than
		// our failure detector fired). Replace it; its read loop exits on
		// the close and sees the bumped generation.
		p.conn.Close()
	}
	p.conn = conn
	p.gen++
	gen := p.gen
	wasAlive := p.alive
	p.alive = true
	p.lastSeen = time.Now()
	if wasAlive {
		n.stats.reconnects.Add(1)
	}
	n.bumpLocked()
	n.mu.Unlock()
	n.logf("rank %d: peer %d up", n.rank, p.rank)
	n.wg.Add(1)
	go n.readLoop(p, conn, gen)
}

// readLoop drains frames from one connection until it dies. It is the only
// reader, so collective consumers never touch the socket — which is also
// what makes the send-then-receive collectives deadlock-free: bytes are
// always drained off the wire into the mailbox even while the local
// collective is blocked writing.
func (n *Node) readLoop(p *peer, conn net.Conn, gen uint64) {
	defer n.wg.Done()
	for {
		h, payload, bytes, err := readFrame(conn, n.cfg.MaxPayload, &n.pool)
		if err != nil {
			if errors.Is(err, errWire) {
				// Definitive corruption (bad checksum, bad framing) — not
				// a cleanly dying conn. The checksum already kept the bytes
				// out of any reduction; quarantining keeps the sick sender
				// from wedging the very next round too.
				n.stats.corruptFrames.Add(1)
				n.quarantinePeer(p, err.Error())
			}
			n.peerDown(p, conn, gen)
			return
		}
		n.stats.bytesRecv.Add(int64(bytes))
		n.stats.framesRecv.Add(1)
		n.mu.Lock()
		if p.gen == gen {
			p.lastSeen = time.Now()
		}
		n.mu.Unlock()
		n.dispatch(p, h, payload)
	}
}

// peerDown records a dead connection. Only the generation that installed
// the connection may declare the peer dead — a newer connection in the
// slot means the peer already recovered.
func (n *Node) peerDown(p *peer, conn net.Conn, gen uint64) {
	conn.Close()
	n.mu.Lock()
	if p.gen != gen {
		n.mu.Unlock()
		return
	}
	p.conn = nil
	if p.alive {
		p.alive = false
		n.stats.peerDeaths.Add(1)
		n.bumpLocked()
		n.mu.Unlock()
		n.logf("rank %d: peer %d down", n.rank, p.rank)
		return
	}
	n.mu.Unlock()
}

// killConn force-closes a peer's current connection (Leave frames and the
// failure detector use it); the read loop then runs the peerDown path.
func (n *Node) killConn(p *peer) {
	n.mu.Lock()
	conn := p.conn
	n.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// quarantinePeer bars p from reconnecting for cfg.Quarantine (extending
// any sentence already running). Both reconnect paths honour the bar.
func (n *Node) quarantinePeer(p *peer, why string) {
	n.mu.Lock()
	until := time.Now().Add(n.cfg.Quarantine)
	if until.After(p.quarUntil) {
		p.quarUntil = until
	}
	n.mu.Unlock()
	n.stats.quarantines.Add(1)
	n.logf("rank %d: quarantining peer %d for %v: %s", n.rank, p.rank, n.cfg.Quarantine, why)
}

// accuse acts on an Abort frame's suspect bitmap: quarantine every named
// rank and cut our own connection to it. Without this fan-out only the
// stall's direct victim would cut its link, the coordinator's view would
// still include the frozen peer, and every re-formed round would wedge on
// it again.
func (n *Node) accuse(suspects uint64) {
	for r, p := range n.peers {
		if p == nil || suspects&(1<<uint(r)) == 0 {
			continue
		}
		n.quarantinePeer(p, "accused of stalling a round")
		n.killConn(p)
	}
}

// heartbeatLoop beacons liveness on every live connection and acts as the
// failure detector: a peer silent for PeerTimeout gets its connection
// closed, which flows through peerDown and bumps the membership epoch.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for range ticker.C {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		var live, stale []*peer
		now := time.Now()
		for _, p := range n.peers {
			if p == nil || !p.alive {
				continue
			}
			if now.Sub(p.lastSeen) > n.cfg.PeerTimeout {
				stale = append(stale, p)
			} else {
				live = append(live, p)
			}
		}
		n.mu.Unlock()
		for _, p := range stale {
			n.logf("rank %d: peer %d heartbeat timeout", n.rank, p.rank)
			n.killConn(p)
		}
		hb := &header{Type: frameHeartbeat, Sender: uint32(n.rank)}
		for _, p := range live {
			p.send(n, hb, nil, n.cfg.HeartbeatEvery)
		}
	}
}

// leaderLocked returns the round coordinator: the lowest alive rank.
// Callers hold n.mu.
func (n *Node) leaderLocked() int {
	for r, p := range n.peers {
		if r == n.rank || (p != nil && p.alive) {
			return r
		}
	}
	return n.rank
}

// aliveViewLocked returns the bitmap of self plus all live peers.
func (n *Node) aliveViewLocked() uint64 {
	view := uint64(1) << uint(n.rank)
	for r, p := range n.peers {
		if p != nil && p.alive {
			view |= 1 << uint(r)
		}
	}
	return view
}

// ranksOf expands a view bitmap into a sorted rank slice.
func ranksOf(view uint64) []int {
	var ranks []int
	for r := 0; r < maxRanks; r++ {
		if view&(1<<uint(r)) != 0 {
			ranks = append(ranks, r)
		}
	}
	return ranks
}
