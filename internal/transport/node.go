package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"crossbow/internal/chaos"
	"crossbow/internal/ckpt"
	"crossbow/internal/metrics"
)

// ErrClosed is returned by Node methods after Close or Kill.
var ErrClosed = errors.New("transport: node closed")

// maxRanks bounds the cluster size: round views travel as 64-bit rank
// bitmaps.
const maxRanks = 64

// Config describes one rank of a static cluster.
type Config struct {
	// Rank is this node's index into Peers.
	Rank int
	// Peers lists every member's listen address, indexed by rank
	// (Peers[Rank] is this node's own listen address). The list is the
	// static membership universe; live membership within it is tracked by
	// heartbeats.
	Peers []string
	// Listener optionally supplies a pre-bound listener for Peers[Rank]
	// (tests bind :0 listeners first so addresses are collision-free).
	Listener net.Listener
	// Tree selects the binomial-tree collective instead of the default
	// bandwidth-optimal ring — the same choice cluster.Interconnect.Tree
	// models.
	Tree bool
	// HeartbeatEvery is the liveness beacon period (default 100ms).
	HeartbeatEvery time.Duration
	// PeerTimeout marks a peer dead when no traffic arrived for this long
	// (default 10× HeartbeatEvery).
	PeerTimeout time.Duration
	// DialBackoff is the initial redial delay, doubling per failure up to
	// 32× (default 25ms).
	DialBackoff time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// RoundTimeout is the per-collective-step watchdog: a peer that owes
	// this node a chunk and stays silent for this long — heartbeats
	// notwithstanding — is declared stalled, quarantined, and the round is
	// aborted with the suspect named so every participant cuts it too
	// (default 30s). This is the only defence against a peer that is alive
	// to the failure detector but frozen inside the collective.
	RoundTimeout time.Duration
	// Quarantine is how long a peer caught corrupting frames or stalling a
	// round is barred from reconnecting (default PeerTimeout). Without it
	// a sick peer rejoins instantly and wedges the very next round.
	Quarantine time.Duration
	// MaxPayload bounds one frame's payload (default 256 MiB).
	MaxPayload int
	// Segments is the collectives' pipelining factor: every per-link
	// transfer is split into this many fixed-boundary segments so the send
	// of segment i overlaps the receive+sum of segment i−1 instead of the
	// socket idling during summation (default 4). Boundaries are a pure
	// function of the vector length, so the per-element reduction order —
	// and with it bit-identity across participants — is unchanged for any
	// value. The round watchdog arms once per segment, so a peer frozen
	// mid-pipeline is still caught.
	Segments int
	// Chaos, when set, interposes a fault injector on every outgoing
	// frame of this node (tests and soaks only; it is an in-process hook,
	// so all ranks of a chaos run share one injector in one process).
	Chaos *chaos.Injector
	// Snapshot, if set, serves the node's current model to rejoining
	// peers: it must return a checkpoint of the latest published cluster
	// average model, or nil when none exists yet. Called on transport
	// goroutines; must be quick (one model copy).
	Snapshot func() *ckpt.Checkpoint
	// Logf receives debug lines (nil: silent).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if len(c.Peers) < 1 || len(c.Peers) > maxRanks {
		return fmt.Errorf("transport: need 1..%d peers, got %d", maxRanks, len(c.Peers))
	}
	if c.Rank < 0 || c.Rank >= len(c.Peers) {
		return fmt.Errorf("transport: rank %d outside peer list of %d", c.Rank, len(c.Peers))
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * c.HeartbeatEvery
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.Quarantine <= 0 {
		c.Quarantine = c.PeerTimeout
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 256 << 20
	}
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.Segments > 1<<16 {
		c.Segments = 1 << 16
	}
	return nil
}

// Round reports one completed (or aborted) AllReduce.
type Round struct {
	// Seq is the coordinator-assigned round number, monotone across the
	// cluster's lifetime (it survives coordinator failover and rejoins).
	Seq uint64
	// Participants is the number of ranks whose models were summed.
	Participants int
	// Restart is set when this round's view differs from the previous
	// round's: participants must re-derive shared state from the
	// consensus sum instead of updating it incrementally.
	Restart bool
	// Aborted is set when a membership change interrupted the collective;
	// the buffer contents are then undefined and the caller should skip
	// this exchange (the next successful round carries Restart and
	// re-aligns every participant).
	Aborted bool
	// WaitNs is the time spent at the round barrier (waiting for every
	// live member to arrive); CollectiveNs is the data phase — the
	// quantity the simulated Interconnect.AllReduceUS predicts.
	WaitNs       int64
	CollectiveNs int64
}

// beginMsg is a coordinator's round announcement.
type beginMsg struct {
	round   uint64
	view    uint64 // rank bitmap
	restart bool
}

// Node is one rank of the TCP cluster transport.
type Node struct {
	cfg  Config
	rank int
	ln   net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	peers    []*peer       // by rank; peers[rank] == nil for self
	epoch    uint64        // membership epoch, bumped on every alive/dead flip
	notifyCh chan struct{} // closed and replaced on every epoch bump or abort
	closed   bool

	// Round barrier state (see collective.go). readySet maps rank →
	// dirty: presence means the rank is at the barrier, true means its
	// previous round aborted and it needs the next round to Restart.
	readySet   map[int]bool
	nextRound  uint64
	lastRound  uint64
	prevView   uint64
	begin      *beginMsg
	abortRound uint64 // highest round an Abort frame announced
	// dirty records that this node's last round aborted: its state may
	// have diverged from peers whose copy of the same round completed, so
	// the next round it joins must carry Restart (re-derive shared state
	// from the consensus sum). Announced on Ready frames via flagDirty;
	// cleared only by a completed Restart round.
	dirty bool

	// Asynchronous exchange plumbing (see async.go): BeginAllReduce hands
	// rounds to a dedicated exchange goroutine through exchCh (unbuffered,
	// so a handle is either picked up or refused — never stranded).
	// exchStop closes on shutdown; exchStarted guards the lazy launch.
	exchCh      chan *PendingRound
	exchStop    chan struct{}
	exchStarted bool

	// Pending FetchSnapshot response slot.
	snapMu sync.Mutex
	snapCh chan *ckpt.Checkpoint

	pool  bufPool
	stats nodeStats
	wg    sync.WaitGroup
}

// Listen binds the node's listener and starts the background machinery:
// the accept loop, one dial loop per higher-ranked peer (lower ranks dial
// higher ranks, so each pair has one owner and a restarted process is
// re-dialed automatically), and the heartbeat/failure-detector loop. It
// returns immediately; use WaitPeers to barrier on the mesh coming up.
func Listen(cfg Config) (*Node, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Peers[cfg.Rank], err)
		}
	}
	n := &Node{
		cfg:       cfg,
		rank:      cfg.Rank,
		ln:        ln,
		readySet:  make(map[int]bool),
		nextRound: 1,
		notifyCh:  make(chan struct{}),
		prevView:  fullView(len(cfg.Peers)),
		exchCh:    make(chan *PendingRound),
		exchStop:  make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	for r, addr := range cfg.Peers {
		if r == cfg.Rank {
			n.peers = append(n.peers, nil)
			continue
		}
		n.peers = append(n.peers, &peer{rank: r, addr: addr, data: make(chan dataMsg, 256)})
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for r := cfg.Rank + 1; r < len(cfg.Peers); r++ {
		n.wg.Add(1)
		go n.dialLoop(n.peers[r])
	}
	n.wg.Add(1)
	go n.heartbeatLoop()
	return n, nil
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.rank }

// Addr returns the listener's address (useful with :0 listeners).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// WaitPeers blocks until every static peer is alive or the timeout
// elapses, returning the number of live peers (excluding self). Cold
// bootstrap calls it so training starts with the full mesh; a rejoining
// node sees its peers immediately.
func (n *Node) WaitPeers(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		alive := 0
		for _, p := range n.peers {
			if p != nil && p.alive {
				alive++
			}
		}
		if alive == len(n.peers)-1 || n.closed || time.Now().After(deadline) {
			return alive
		}
		ch := n.notifyCh
		n.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
		}
		n.mu.Lock()
	}
}

// Close leaves the cluster gracefully: a Leave frame tells every live peer
// not to wait for this rank at the next round barrier, then all
// connections and the listener shut down and background goroutines join.
func (n *Node) Close() error {
	n.shutdown(true)
	return nil
}

// Kill tears the node down abruptly — no Leave, no goodbyes — simulating
// a process crash at the transport layer. Peers discover the death by
// heartbeat timeout. Tests use it to exercise the failure path.
func (n *Node) Kill() {
	n.shutdown(false)
}

func (n *Node) shutdown(graceful bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.exchStop)
	var live []*peer
	for _, p := range n.peers {
		if p != nil && p.alive {
			live = append(live, p)
		}
	}
	n.bumpLocked()
	n.mu.Unlock()

	if graceful {
		for _, p := range live {
			p.send(n, &header{Type: frameLeave, Sender: uint32(n.rank)}, nil, time.Second)
		}
		// Linger until every live peer closes its end in response to the
		// Leave (bounded). Closing our sockets first would race their
		// receive path: a peer's heartbeat arriving after our close draws
		// a TCP reset, and a reset DESTROYS any of our final collective
		// chunks still sitting unread in that peer's receive buffer —
		// aborting its last round even though we sent everything. Keeping
		// the connections open (and their read loops draining) until the
		// peer acts on the Leave makes departure invisible to in-flight
		// rounds.
		deadline := time.Now().Add(time.Second)
		n.mu.Lock()
		for {
			any := false
			for _, p := range live {
				if p.alive {
					any = true
				}
			}
			if !any || time.Now().After(deadline) {
				break
			}
			ch := n.notifyCh
			n.mu.Unlock()
			select {
			case <-ch:
			case <-time.After(time.Until(deadline)):
			}
			n.mu.Lock()
		}
		n.mu.Unlock()
	}
	n.ln.Close()
	n.mu.Lock()
	for _, p := range n.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
	n.mu.Unlock()
	n.wg.Wait()
	// Release any payloads still queued in the data mailboxes.
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		for drained := false; !drained; {
			select {
			case m := <-p.data:
				n.pool.Put(m.buf)
			default:
				drained = true
			}
		}
	}
}

// bumpLocked advances the membership epoch and wakes every waiter (both
// cond waiters and channel selectors). Callers hold n.mu.
func (n *Node) bumpLocked() {
	n.epoch++
	close(n.notifyCh)
	n.notifyCh = make(chan struct{})
	n.cond.Broadcast()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// fullView returns the bitmap of all n static ranks.
func fullView(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// Stats snapshots the node's transport counters.
func (n *Node) Stats() metrics.TransportStats {
	s := n.stats.snapshot()
	s.Rank = n.rank
	s.Peers = len(n.cfg.Peers)
	n.mu.Lock()
	for _, p := range n.peers {
		if p != nil && p.alive {
			s.LivePeers++
		}
	}
	s.Epoch = int64(n.epoch)
	n.mu.Unlock()
	return s
}

// dispatch routes one received frame. Called from a peer's read loop;
// payload ownership transfers here (push to a mailbox or return to the
// pool).
func (n *Node) dispatch(p *peer, h header, payload []float32) {
	switch h.Type {
	case frameHeartbeat, frameHelloAck:
		n.pool.Put(payload)
	case frameReady:
		n.pool.Put(payload)
		n.mu.Lock()
		n.readySet[int(h.Sender)] = h.Flags&flagDirty != 0
		n.cond.Broadcast()
		n.mu.Unlock()
	case frameBegin:
		n.pool.Put(payload)
		n.mu.Lock()
		if n.begin == nil || n.begin.round < h.Round {
			n.begin = &beginMsg{round: h.Round, view: h.Aux, restart: h.Flags&flagRestart != 0}
		}
		if h.Round >= n.nextRound {
			// Track the cluster's round clock so a coordinator failover
			// never reuses a round number.
			n.nextRound = h.Round + 1
		}
		n.cond.Broadcast()
		n.mu.Unlock()
	case frameAbort:
		n.pool.Put(payload)
		// Aux names the ranks the aborter's watchdog caught stalling. Act
		// on the accusation before waking the local collective: cutting
		// our own conn to the suspect is what shrinks the next view —
		// the aborter alone cutting its link would leave the coordinator
		// still seeing the stalled peer alive, and every retried round
		// would wedge on it again.
		if h.Aux != 0 {
			n.accuse(h.Aux)
		}
		n.mu.Lock()
		if h.Round > n.abortRound {
			n.abortRound = h.Round
		}
		close(n.notifyCh)
		n.notifyCh = make(chan struct{})
		n.cond.Broadcast()
		n.mu.Unlock()
	case frameData:
		buf, err := payloadF32(payload, &h)
		if err != nil {
			n.pool.Put(payload)
			n.logf("rank %d: dropping bad data frame from %d: %v", n.rank, h.Sender, err)
			return
		}
		// Blocking push is safe: the mailbox holds far more frames than
		// one round produces, and stale rounds are drained by the next
		// collective.
		p.data <- dataMsg{round: h.Round, phase: dataPhase(h.Aux), seg: dataSeg(h.Aux), step: dataStep(h.Aux), buf: buf}
	case frameSnapReq:
		n.pool.Put(payload)
		n.wg.Add(1)
		go n.serveSnapshot(p)
	case frameSnapResp:
		n.deliverSnapshot(h, payload)
	case frameLeave:
		n.pool.Put(payload)
		n.logf("rank %d: peer %d left", n.rank, p.rank)
		n.killConn(p)
	default:
		n.pool.Put(payload)
		n.logf("rank %d: unknown frame type %d from %d", n.rank, h.Type, h.Sender)
	}
}

// serveSnapshot answers one SnapReq with the configured provider's current
// checkpoint (empty payload when none is available).
func (n *Node) serveSnapshot(p *peer) {
	defer n.wg.Done()
	var payload []byte
	if n.cfg.Snapshot != nil {
		if c := n.cfg.Snapshot(); c != nil {
			var b bytes.Buffer
			if err := ckpt.Write(&b, c); err == nil {
				payload = b.Bytes()
				n.stats.snapshotsServed.Add(1)
			}
		}
	}
	p.send(n, &header{Type: frameSnapResp, Sender: uint32(n.rank)}, payload, n.cfg.WriteTimeout)
}

// deliverSnapshot hands a SnapResp payload to the pending FetchSnapshot
// call, if any.
func (n *Node) deliverSnapshot(h header, payload []float32) {
	var c *ckpt.Checkpoint
	if h.Length > 0 {
		raw := f32Bytes(payload)[:h.Length]
		if parsed, err := ckpt.Read(bytes.NewReader(raw)); err == nil {
			c = parsed
		} else {
			n.logf("rank %d: bad snapshot payload from %d: %v", n.rank, h.Sender, err)
		}
	}
	n.pool.Put(payload)
	n.snapMu.Lock()
	ch := n.snapCh
	n.snapMu.Unlock()
	if ch != nil {
		select {
		case ch <- c:
		default:
		}
	}
}

// FetchSnapshot pulls the cluster's current model from a live peer: ranks
// are tried in order and the first non-empty checkpoint-v3 snapshot wins.
// It returns (nil, nil) when no peer holds a snapshot within the timeout —
// a cold bootstrap, where every rank initialises from the seed instead.
func (n *Node) FetchSnapshot(timeout time.Duration) (*ckpt.Checkpoint, error) {
	deadline := time.Now().Add(timeout)
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return nil, ErrClosed
		}
		var live []*peer
		for _, p := range n.peers {
			if p != nil && p.alive {
				live = append(live, p)
			}
		}
		n.mu.Unlock()
		for _, p := range live {
			per := time.Until(deadline)
			if per > 2*time.Second {
				per = 2 * time.Second
			}
			if per <= 0 {
				return nil, nil
			}
			if c := n.fetchSnapshotFrom(p, per); c != nil {
				n.stats.snapshotsFetched.Add(1)
				return c, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (n *Node) fetchSnapshotFrom(p *peer, timeout time.Duration) *ckpt.Checkpoint {
	ch := make(chan *ckpt.Checkpoint, 1)
	n.snapMu.Lock()
	n.snapCh = ch
	n.snapMu.Unlock()
	defer func() {
		n.snapMu.Lock()
		n.snapCh = nil
		n.snapMu.Unlock()
	}()
	if err := p.send(n, &header{Type: frameSnapReq, Sender: uint32(n.rank)}, nil, n.cfg.WriteTimeout); err != nil {
		return nil
	}
	select {
	case c := <-ch:
		return c
	case <-time.After(timeout):
		return nil
	}
}
