package transport

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"crossbow/internal/ckpt"
)

// testConfig returns fast-failure-detector settings suitable for localhost.
func testConfig(rank int, addrs []string, ln net.Listener, tree bool) Config {
	return Config{
		Rank:           rank,
		Peers:          addrs,
		Listener:       ln,
		Tree:           tree,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    250 * time.Millisecond,
		DialBackoff:    10 * time.Millisecond,
	}
}

// startCluster boots k nodes on pre-bound localhost listeners (so there
// are no port races) and waits for the full mesh.
func startCluster(t *testing.T, k int, tree bool, mutate func(rank int, cfg *Config)) []*Node {
	t.Helper()
	lns := make([]net.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, k)
	for i := range nodes {
		cfg := testConfig(i, addrs, lns[i], tree)
		if mutate != nil {
			mutate(i, &cfg)
		}
		n, err := Listen(cfg)
		if err != nil {
			t.Fatalf("Listen rank %d: %v", i, err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		if got := n.WaitPeers(5 * time.Second); got != k-1 {
			t.Fatalf("rank %d: WaitPeers = %d, want %d", n.Rank(), got, k-1)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// runRound drives AllReduce concurrently on the given nodes and returns
// each node's Round, in input order.
func runRound(t *testing.T, nodes []*Node, bufs [][]float32) []Round {
	t.Helper()
	rounds := make([]Round, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			rounds[i], errs[i] = n.AllReduce(bufs[i])
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d AllReduce: %v", nodes[i].Rank(), err)
		}
	}
	return rounds
}

// rankBufs builds per-node vectors with distinguishable values and returns
// them along with the expected element-wise sum.
func rankBufs(k, n int) ([][]float32, []float32) {
	bufs := make([][]float32, k)
	want := make([]float32, n)
	for r := 0; r < k; r++ {
		bufs[r] = make([]float32, n)
		for i := range bufs[r] {
			v := float32(r+1) * float32(i%13+1) * 0.5
			bufs[r][i] = v
			want[i] += v
		}
	}
	return bufs, want
}

func checkSums(t *testing.T, bufs [][]float32, want []float32) {
	t.Helper()
	for r, buf := range bufs {
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("rank %d element %d = %v, want %v", r, i, buf[i], want[i])
			}
		}
	}
}

// TestAllReduceTopologies checks both collectives across cluster sizes and
// buffer lengths (including lengths that do not divide evenly into ring
// chunks, and a buffer shorter than the ring): every participant must end
// with the bit-identical element-wise sum.
func TestAllReduceTopologies(t *testing.T) {
	for _, tc := range []struct {
		k, n int
		tree bool
	}{
		{2, 64, false}, {3, 97, false}, {4, 2, false},
		{2, 64, true}, {3, 97, true}, {5, 33, true},
	} {
		t.Run(fmt.Sprintf("k%d_n%d_tree%v", tc.k, tc.n, tc.tree), func(t *testing.T) {
			nodes := startCluster(t, tc.k, tc.tree, nil)
			bufs, want := rankBufs(tc.k, tc.n)
			rounds := runRound(t, nodes, bufs)
			for i, r := range rounds {
				if r.Aborted || r.Participants != tc.k || r.Seq != rounds[0].Seq {
					t.Fatalf("rank %d round = %+v", i, r)
				}
				if r.Restart {
					t.Fatalf("cold-start full-view round flagged restart: %+v", r)
				}
			}
			checkSums(t, bufs, want)

			// Second round: sequence advances, still bit-identical.
			bufs2, want2 := rankBufs(tc.k, tc.n)
			rounds2 := runRound(t, nodes, bufs2)
			for _, r := range rounds2 {
				if r.Seq != rounds[0].Seq+1 || r.Aborted {
					t.Fatalf("second round = %+v (first seq %d)", r, rounds[0].Seq)
				}
			}
			checkSums(t, bufs2, want2)
		})
	}
}

// TestSoloCluster degenerates to a no-op: one member, no peers, instant
// rounds.
func TestSoloCluster(t *testing.T) {
	nodes := startCluster(t, 1, false, nil)
	buf := []float32{1, 2, 3}
	r, err := nodes[0].AllReduce(buf)
	if err != nil || r.Participants != 1 || r.Aborted {
		t.Fatalf("solo round = %+v, err %v", r, err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("solo buffer mutated: %v", buf)
	}
}

// TestPeerDeathShrinksView kills one node and checks the survivors' next
// round runs with the shrunken view and carries the Restart flag — the
// signal that tells SMA to re-derive the central model from the consensus
// sum after churn.
func TestPeerDeathShrinksView(t *testing.T) {
	nodes := startCluster(t, 3, false, nil)
	bufs, want := rankBufs(3, 50)
	runRound(t, nodes, bufs)
	checkSums(t, bufs, want)

	nodes[2].Kill()

	survivors := nodes[:2]
	bufs2, want2 := rankBufs(2, 50)
	rounds := runRound(t, survivors, bufs2)
	for i, r := range rounds {
		if r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d post-death round = %+v, want 2-member restart", i, r)
		}
	}
	checkSums(t, bufs2, want2)

	s := survivors[0].Stats()
	if s.PeerDeaths < 1 || s.RestartRounds < 1 {
		t.Fatalf("survivor stats missed the churn: %+v", s)
	}
}

// TestLeaderFailover kills rank 0 — the round coordinator — and checks
// that rank 1 takes over coordination and the cluster keeps assigning
// monotone round numbers.
func TestLeaderFailover(t *testing.T) {
	nodes := startCluster(t, 3, false, nil)
	bufs, _ := rankBufs(3, 20)
	first := runRound(t, nodes, bufs)

	nodes[0].Kill()

	survivors := nodes[1:]
	bufs2, want2 := rankBufs(2, 20)
	rounds := runRound(t, survivors, bufs2)
	for i, r := range rounds {
		if r.Aborted || r.Participants != 2 || !r.Restart {
			t.Fatalf("rank %d post-failover round = %+v", i, r)
		}
		if r.Seq <= first[0].Seq {
			t.Fatalf("round sequence went backwards across failover: %d then %d", first[0].Seq, r.Seq)
		}
	}
	checkSums(t, bufs2, want2)
}

// TestRejoin restarts a killed rank as a fresh process on the same address
// and checks it is re-admitted: the first full-view round after rejoin is
// flagged Restart and sums across all three members again.
func TestRejoin(t *testing.T) {
	nodes := startCluster(t, 3, false, nil)
	addrs := nodes[0].cfg.Peers
	bufs, _ := rankBufs(3, 40)
	runRound(t, nodes, bufs)

	nodes[2].Kill()
	bufs2, _ := rankBufs(2, 40)
	runRound(t, nodes[:2], bufs2)

	// "Restart the process": a brand-new node on rank 2's address.
	reborn, err := Listen(testConfig(2, addrs, nil, false))
	if err != nil {
		t.Fatalf("rejoin listen: %v", err)
	}
	defer reborn.Close()
	// Mutual visibility before the round: the acceptor side of a handshake
	// attaches slightly before the dialer side, so every member must wait,
	// not just the rejoiner (live training re-runs the barrier every
	// τ_global, but this test runs exactly one round).
	for _, n := range []*Node{reborn, nodes[0], nodes[1]} {
		if got := n.WaitPeers(5 * time.Second); got != 2 {
			t.Fatalf("rank %d sees %d peers after rejoin, want 2", n.Rank(), got)
		}
	}

	all := []*Node{nodes[0], nodes[1], reborn}
	bufs3, want3 := rankBufs(3, 40)
	rounds := runRound(t, all, bufs3)
	for i, r := range rounds {
		if r.Aborted || r.Participants != 3 || !r.Restart {
			t.Fatalf("rank %d rejoin round = %+v, want 3-member restart", i, r)
		}
	}
	checkSums(t, bufs3, want3)

	// Next round is a plain incremental round again.
	bufs4, want4 := rankBufs(3, 40)
	rounds = runRound(t, all, bufs4)
	for i, r := range rounds {
		if r.Aborted || r.Restart {
			t.Fatalf("rank %d post-rejoin round = %+v, want plain round", i, r)
		}
	}
	checkSums(t, bufs4, want4)
}

// TestAbortMidCollective kills a participant after the round barrier, so
// the survivors are already exchanging chunks when it disappears. They
// must abort (not hang), and the following round must complete with the
// shrunken view and the Restart flag.
func TestAbortMidCollective(t *testing.T) {
	nodes := startCluster(t, 3, false, nil)
	bufs, _ := rankBufs(3, 1<<16)

	var wg sync.WaitGroup
	rounds := make([]Round, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rounds[i], _ = nodes[i].AllReduce(bufs[i])
		}(i)
	}
	// Rank 2 enters the barrier (so the round begins with all three) and
	// dies immediately after.
	go func() {
		nodes[2].AllReduce(bufs[2])
	}()
	time.Sleep(30 * time.Millisecond)
	nodes[2].Kill()
	wg.Wait()

	// Ranks 0 and 1 either aborted the 3-way round or (rarely, if rank 2
	// died before Begin) completed a 2-way one; both are legal. What is
	// mandatory: the next round completes cleanly without rank 2.
	bufs2, want2 := rankBufs(2, 1<<10)
	again := runRound(t, nodes[:2], bufs2)
	for i, r := range again {
		if r.Aborted || r.Participants != 2 {
			t.Fatalf("rank %d recovery round = %+v", i, r)
		}
	}
	checkSums(t, bufs2, want2)
}

// TestSnapshotFetch serves a checkpoint from rank 0 and pulls it from
// rank 2 — the rejoin seeding path. Rank 1 holds no snapshot, proving the
// fetch skips empty peers.
func TestSnapshotFetch(t *testing.T) {
	snap := &ckpt.Checkpoint{
		Model:  "resnet32",
		Epoch:  7,
		Meta:   map[string]string{"source": "test"},
		Params: []float32{1, 2, 3, 4, 5},
	}
	nodes := startCluster(t, 3, false, func(rank int, cfg *Config) {
		if rank == 0 {
			cfg.Snapshot = func() *ckpt.Checkpoint { return snap }
		}
	})

	got, err := nodes[2].FetchSnapshot(5 * time.Second)
	if err != nil {
		t.Fatalf("FetchSnapshot: %v", err)
	}
	if got == nil {
		t.Fatal("FetchSnapshot returned no snapshot")
	}
	if got.Model != "resnet32" || got.Epoch != 7 || got.Meta["source"] != "test" {
		t.Fatalf("snapshot fields corrupted: %+v", got)
	}
	if len(got.Params) != 5 || got.Params[2] != 3 || got.Params[4] != 5 {
		t.Fatalf("snapshot params corrupted: %+v", got.Params)
	}
	if s := nodes[0].Stats(); s.SnapshotsServed != 1 {
		t.Fatalf("rank 0 served %d snapshots, want 1", s.SnapshotsServed)
	}
	if s := nodes[2].Stats(); s.SnapshotsFetched != 1 {
		t.Fatalf("rank 2 fetched %d snapshots, want 1", s.SnapshotsFetched)
	}

	// No provider anywhere on the queried ranks: a bounded empty answer.
	none, err := nodes[1].FetchSnapshot(300 * time.Millisecond)
	if err != nil {
		t.Fatalf("empty FetchSnapshot: %v", err)
	}
	if none != nil && none.Meta["source"] != "test" {
		t.Fatalf("unexpected snapshot: %+v", none)
	}
}

// TestTransportStats sanity-checks the counters after real traffic.
func TestTransportStats(t *testing.T) {
	nodes := startCluster(t, 2, false, nil)
	bufs, _ := rankBufs(2, 256)
	runRound(t, nodes, bufs)
	s := nodes[0].Stats()
	if s.Rank != 0 || s.Peers != 2 || s.LivePeers != 1 {
		t.Fatalf("membership stats: %+v", s)
	}
	if s.Rounds != 1 || s.BytesSent == 0 || s.BytesRecv == 0 || s.FramesSent == 0 {
		t.Fatalf("traffic stats: %+v", s)
	}
	if s.RoundMean <= 0 || s.RoundMax < s.RoundMean {
		t.Fatalf("round latency stats: mean %v max %v", s.RoundMean, s.RoundMax)
	}
}

// TestCloseNoGoroutineLeak boots and tears down clusters repeatedly and
// requires the goroutine count to return to baseline — the CI smoke
// test's no-leak criterion at unit scope.
func TestCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		nodes := startCluster(t, 3, trial%2 == 0, nil)
		bufs, _ := rankBufs(3, 64)
		runRound(t, nodes, bufs)
		for _, n := range nodes {
			n.Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// AllReduce after Close fails fast instead of hanging.
	nodes := startCluster(t, 2, false, nil)
	nodes[0].Close()
	if _, err := nodes[0].AllReduce(make([]float32, 4)); err != ErrClosed {
		t.Fatalf("AllReduce after Close: err = %v, want ErrClosed", err)
	}
}
