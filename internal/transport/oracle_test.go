package transport

import (
	"testing"
	"time"

	"crossbow/internal/cluster"
)

// TestPresetsCoverTopologies pins the contract the transport relies on: the
// exported preset list is non-empty, each preset is named, and the two
// collective topologies the transport implements (ring and tree) are both
// expressible as cost models.
func TestPresetsCoverTopologies(t *testing.T) {
	presets := cluster.Presets()
	if len(presets) < 2 {
		t.Fatalf("cluster.Presets() returned %d models", len(presets))
	}
	seen := map[string]bool{}
	for _, ic := range presets {
		if ic.Name == "" || ic.BytesPerUS <= 0 || ic.LatencyUS <= 0 {
			t.Errorf("malformed preset %+v", ic)
		}
		if seen[ic.Name] {
			t.Errorf("duplicate preset name %q", ic.Name)
		}
		seen[ic.Name] = true
		tree := ic
		tree.Tree = true
		if tree.AllReduceUS(1<<20, 4) <= 0 || ic.AllReduceUS(1<<20, 4) <= 0 {
			t.Errorf("%s: zero-cost all-reduce prediction", ic.Name)
		}
	}
}

// TestAllReduceAgainstCostOracle runs a real localhost all-reduce on both
// topologies and validates it against the simulated Interconnect: the
// measured collective must be positive, rounds must carry the measured
// CollectiveNs the cost model predicts (Interconnect.AllReduceUS is the
// simulated counterpart of exactly that phase), and the structural claim
// the cost model encodes — every node transmits ~2(k−1)/k of the tensor on
// a ring, ~its full size on a non-root tree rank — must hold on the wire,
// byte for byte. Wall-clock ratios against each preset are logged, not
// asserted (localhost loopback is far faster than any modelled NIC).
func TestAllReduceAgainstCostOracle(t *testing.T) {
	const k, dim = 3, 64 << 10
	for _, tree := range []bool{false, true} {
		name := "ring"
		if tree {
			name = "tree"
		}
		t.Run(name, func(t *testing.T) {
			nodes := startCluster(t, k, tree, nil)
			before := make([]int64, k)
			for i, n := range nodes {
				before[i] = n.Stats().BytesSent
			}
			bufs, want := rankBufs(k, dim)
			rounds := runRound(t, nodes, bufs)
			checkSums(t, bufs, want)

			var measured time.Duration
			for i, r := range rounds {
				if r.Aborted || r.Participants != k {
					t.Fatalf("node %d: round %+v", i, r)
				}
				if r.CollectiveNs <= 0 {
					t.Fatalf("node %d: no measured collective time", i)
				}
				if d := time.Duration(r.CollectiveNs); d > measured {
					measured = d
				}
			}

			// Structural validation: payload bytes per node as the cost
			// model assumes. Ring: 2(k−1) chunks of dim/k floats. Tree:
			// a non-root rank sends its full tensor once up and relays to
			// subtree children. Frame headers ride on top, so compare
			// with ±15% slack.
			for i, n := range nodes {
				sent := n.Stats().BytesSent - before[i]
				var want int64
				if tree {
					// k=3: non-root ranks send their full partial sum up
					// once; the root broadcasts the finished sum to both
					// children.
					want = int64(dim * 4)
					if i == 0 {
						want = int64(2 * dim * 4)
					}
				} else {
					want = int64(2 * (k - 1) * (dim / k) * 4)
				}
				if sent < want*85/100 || sent > want*150/100 {
					t.Errorf("node %d (%s): sent %d payload-ish bytes, cost model assumes ~%d", i, name, sent, want)
				}
			}

			bytes := int64(dim * 4)
			for _, ic := range cluster.Presets() {
				ic.Tree = tree
				predicted := time.Duration(ic.AllReduceUS(bytes, k) * float64(time.Microsecond))
				if predicted <= 0 {
					t.Fatalf("%s: no prediction for %d bytes x %d servers", ic.Name, bytes, k)
				}
				t.Logf("%s/%s: measured %v on loopback vs %v predicted for the modelled NIC (x%.2f)",
					name, ic.Name, measured, predicted, float64(measured)/float64(predicted))
			}
		})
	}
}
