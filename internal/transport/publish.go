package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crossbow/internal/ckpt"
	"crossbow/internal/metrics"
)

// Snapshot feed: one training-side Publisher streams published model
// snapshots to a fleet of serving-side Followers over the CBTF framing
// (DESIGN.md §16). The publisher keeps a short history of published rounds
// and sends each follower the cheapest update that provably lands it on the
// latest round: a chunk delta when the follower's acknowledged (round, CRC)
// matches a round still in history, a full checkpoint otherwise. Divergence
// is detected by CRC at both ends — a follower rejects a delta whose base
// does not match its parameters bit-for-bit, and a publisher that sees an
// acknowledgment CRC it cannot explain forces a full resync — so the fleet
// is always byte-identical to some published round, never a patched hybrid.

// PublisherConfig configures a snapshot feed's sending end.
type PublisherConfig struct {
	// Addr is the TCP listen address ("" with Listener set).
	Addr string
	// Listener optionally supplies a pre-bound listener (tests bind :0).
	Listener net.Listener
	// History is how many published rounds are retained as delta bases
	// (default 8): a follower at most History-1 rounds behind still gets a
	// delta, older ones get a full snapshot.
	History int
	// ChunkElems is the delta chunk granularity in float32 elements
	// (default ckpt.DefaultChunkElems).
	ChunkElems int
	// WriteTimeout bounds one frame write per subscriber (default 10s); a
	// follower that cannot drain an update within it is dropped and will
	// redial.
	WriteTimeout time.Duration
	// MaxPayload bounds inbound frames (default 1 MiB — hello/ack frames
	// carry no payload, so anything large is a protocol violation).
	MaxPayload int
	// DrainTimeout bounds Close's wait for followers to acknowledge
	// in-flight updates (default 3s). Closing a connection with unread
	// acks in the receive buffer resets it, which would discard snapshot
	// frames the follower has written to it but not yet read — the drain
	// guarantees a live follower ends a publisher shutdown holding the
	// final published model.
	DrainTimeout time.Duration
	// Logf receives debug lines (nil: silent).
	Logf func(format string, args ...any)
}

func (c *PublisherConfig) fillDefaults() {
	if c.History <= 0 {
		c.History = 8
	}
	if c.ChunkElems <= 0 {
		c.ChunkElems = ckpt.DefaultChunkElems
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 3 * time.Second
	}
}

// pubModel is one published round held as a potential delta base. The
// checkpoint and CRC are immutable; full/deltas are lazily-built encoding
// caches (guarded by the publisher's mu) shared across subscribers.
type pubModel struct {
	c      *ckpt.Checkpoint
	crc    uint32
	full   []byte
	deltas map[int64][]byte // fromRound → encoded delta ending at this round
}

// pubSub is one connected follower. mu serialises sends and the publisher's
// belief about the follower's state: sentRound/sentCRC is the last state we
// transmitted (optimistically assumed applied, since TCP delivers in order),
// and pending the in-flight sends not yet acknowledged. An ack matching any
// pending state is pipelining, not news; an ack the publisher cannot explain
// means the follower diverged and forces a resync.
type pubSub struct {
	id   int
	conn net.Conn

	mu        sync.Mutex
	helloed   bool
	sentRound int64
	sentCRC   uint32
	pending   []subState
}

type subState struct {
	round int64
	crc   uint32
}

// Publisher is the sending end of a snapshot feed.
type Publisher struct {
	cfg PublisherConfig
	ln  net.Listener

	mu     sync.Mutex
	subs   map[int]*pubSub
	nextID int
	hist   []*pubModel
	closed bool

	published  atomic.Int64
	fullSent   atomic.Int64
	deltaSent  atomic.Int64
	fullBytes  atomic.Int64
	deltaBytes atomic.Int64
	resyncs    atomic.Int64

	pool bufPool
	wg   sync.WaitGroup
}

// NewPublisher binds the feed's listener and starts accepting followers.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	cfg.fillDefaults()
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("transport: publisher listen %s: %w", cfg.Addr, err)
		}
	}
	p := &Publisher{cfg: cfg, ln: ln, subs: make(map[int]*pubSub)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the feed's listen address.
func (p *Publisher) Addr() string { return p.ln.Addr().String() }

// Publish offers one snapshot to the fleet. The checkpoint must carry a
// strictly increasing SnapshotRound; the publisher takes ownership of it
// (params become delta bases and must not be modified afterwards). Sends to
// slow or dead followers fail those followers only — they drop and redial.
func (p *Publisher) Publish(c *ckpt.Checkpoint) error {
	if c == nil || len(c.Params) == 0 {
		return errors.New("transport: publishing an empty checkpoint")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if n := len(p.hist); n > 0 {
		last := p.hist[n-1]
		if c.SnapshotRound <= last.c.SnapshotRound {
			p.mu.Unlock()
			return fmt.Errorf("transport: publish round %d after round %d (rounds must increase)",
				c.SnapshotRound, last.c.SnapshotRound)
		}
		if len(c.Params) != len(last.c.Params) || c.Model != last.c.Model {
			p.mu.Unlock()
			return fmt.Errorf("transport: published model changed shape (%q/%d → %q/%d)",
				last.c.Model, len(last.c.Params), c.Model, len(c.Params))
		}
	}
	p.hist = append(p.hist, &pubModel{c: c, crc: ckpt.ParamsCRC(c.Params)})
	if len(p.hist) > p.cfg.History {
		p.hist = p.hist[len(p.hist)-p.cfg.History:]
	}
	subs := make([]*pubSub, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	p.published.Add(1)

	var wg sync.WaitGroup
	for _, s := range subs {
		wg.Add(1)
		go func(s *pubSub) {
			defer wg.Done()
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.helloed {
				if err := p.sendCurrent(s); err != nil {
					p.dropSub(s, err)
				}
			}
		}(s)
	}
	wg.Wait()
	return nil
}

// Stats snapshots the feed's counters.
func (p *Publisher) Stats() metrics.FeedStats {
	s := metrics.FeedStats{
		Published:  p.published.Load(),
		FullSent:   p.fullSent.Load(),
		DeltaSent:  p.deltaSent.Load(),
		FullBytes:  p.fullBytes.Load(),
		DeltaBytes: p.deltaBytes.Load(),
		Resyncs:    p.resyncs.Load(),
	}
	p.mu.Lock()
	s.Subscribers = len(p.subs)
	if n := len(p.hist); n > 0 {
		s.Round = p.hist[n-1].c.SnapshotRound
	}
	p.mu.Unlock()
	return s
}

// WaitSubscribers blocks until at least n followers are connected (and have
// announced themselves) or the timeout elapses, returning the count.
func (p *Publisher) WaitSubscribers(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		have := 0
		for _, s := range p.subs {
			s.mu.Lock()
			if s.helloed {
				have++
			}
			s.mu.Unlock()
		}
		closed := p.closed
		p.mu.Unlock()
		if have >= n || closed || time.Now().After(deadline) {
			return have
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the feed: the listener and every follower connection shut
// down (followers keep serving their last model and redial until a new
// publisher appears).
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	subs := make([]*pubSub, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	p.ln.Close()
	// Drain before closing connections: wait (bounded) until every follower
	// has acknowledged what was sent to it. Closing with its unread acks in
	// our receive buffer would reset the connection and discard any snapshot
	// frame still in flight toward it — a follower must end a publisher
	// shutdown holding the final published model, not the penultimate one.
	deadline := time.Now().Add(p.cfg.DrainTimeout)
	for _, s := range subs {
		for {
			s.mu.Lock()
			n := len(s.pending)
			s.mu.Unlock()
			if n == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, s := range subs {
		s.conn.Close()
	}
	p.wg.Wait()
}

func (p *Publisher) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		s := &pubSub{id: p.nextID, conn: conn}
		p.nextID++
		p.subs[s.id] = s
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveSub(s)
	}
}

// serveSub owns one follower connection's read side: the hello that
// announces its base, then acks after every applied update.
func (p *Publisher) serveSub(s *pubSub) {
	defer p.wg.Done()
	defer p.dropSub(s, nil)
	for {
		h, payload, _, err := readFrame(s.conn, p.cfg.MaxPayload, &p.pool)
		if err != nil {
			return
		}
		p.pool.Put(payload)
		switch h.Type {
		case frameSubHello:
			s.mu.Lock()
			s.helloed = true
			s.sentRound, s.sentCRC = int64(h.Round), uint32(h.Aux)
			s.pending = nil
			err := p.sendCurrent(s)
			s.mu.Unlock()
			if err != nil {
				p.dropSub(s, err)
				return
			}
		case frameSubAck:
			// The follower reports what it actually holds. An ack matching
			// an in-flight send is pipelining — later frames will advance
			// it. Anything else (a rejected delta, a restarted follower,
			// bit rot) resets our belief and heals immediately; sendCurrent
			// falls back to a full snapshot when the CRC cannot be matched
			// to history.
			st := subState{round: int64(h.Round), crc: uint32(h.Aux)}
			s.mu.Lock()
			explained := false
			for i, pend := range s.pending {
				if pend == st {
					s.pending = s.pending[i+1:]
					explained = true
					break
				}
			}
			if !explained {
				s.sentRound, s.sentCRC = st.round, st.crc
				s.pending = nil
				if err := p.sendCurrent(s); err != nil {
					s.mu.Unlock()
					p.dropSub(s, err)
					return
				}
			}
			s.mu.Unlock()
		default:
			p.logf("feed: unexpected frame type %d from subscriber %d", h.Type, s.id)
		}
	}
}

// dropSub unregisters a follower and closes its connection.
func (p *Publisher) dropSub(s *pubSub, err error) {
	p.mu.Lock()
	_, present := p.subs[s.id]
	delete(p.subs, s.id)
	p.mu.Unlock()
	s.conn.Close()
	if present && err != nil {
		p.logf("feed: dropping subscriber %d: %v", s.id, err)
	}
}

// sendCurrent transmits whatever brings the follower from its believed
// (sentRound, sentCRC) state to the latest published round: nothing if it is
// already there, a delta if its base round is in history with a matching
// CRC, a full snapshot otherwise. Caller holds s.mu.
func (p *Publisher) sendCurrent(s *pubSub) error {
	payload, typ, err := p.preparePayload(s.sentRound, s.sentCRC)
	if err != nil || typ == 0 {
		return err
	}
	s.conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	if _, err := writeFrame(s.conn, &header{Type: typ, Sender: uint32(s.id)}, payload); err != nil {
		return err
	}
	s.conn.SetWriteDeadline(time.Time{})
	p.mu.Lock()
	latest := p.hist[len(p.hist)-1]
	p.mu.Unlock()
	s.sentRound, s.sentCRC = latest.c.SnapshotRound, latest.crc
	s.pending = append(s.pending, subState{round: s.sentRound, crc: s.sentCRC})
	if typ == frameSnapDelta {
		p.deltaSent.Add(1)
		p.deltaBytes.Add(int64(len(payload)))
	} else {
		p.fullSent.Add(1)
		p.fullBytes.Add(int64(len(payload)))
	}
	return nil
}

// preparePayload resolves and (lazily, cached per round pair) encodes the
// update from a believed follower state to the latest round. typ 0 means
// the follower is already current.
func (p *Publisher) preparePayload(fromRound int64, fromCRC uint32) (payload []byte, typ byte, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.hist) == 0 {
		return nil, 0, nil
	}
	latest := p.hist[len(p.hist)-1]
	if fromRound == latest.c.SnapshotRound && fromCRC == latest.crc {
		return nil, 0, nil
	}
	var base *pubModel
	for _, m := range p.hist {
		if m.c.SnapshotRound == fromRound {
			base = m
			break
		}
	}
	if base != nil && base.crc != fromCRC && fromRound > 0 {
		// The follower claims a round we published but its bytes differ:
		// genuine divergence, not just a stale follower. Count the forced
		// full resync.
		p.resyncs.Add(1)
		base = nil
	}
	if base != nil && base.crc == fromCRC {
		if latest.deltas == nil {
			latest.deltas = make(map[int64][]byte)
		}
		enc, ok := latest.deltas[fromRound]
		if !ok {
			d, derr := ckpt.ComputeDelta(latest.c.Model, base.c.Params, latest.c.Params,
				fromRound, latest.c.SnapshotRound, latest.c.SnapshotIter, p.cfg.ChunkElems)
			if derr != nil {
				return nil, 0, derr
			}
			var buf bytes.Buffer
			if werr := ckpt.WriteDelta(&buf, d); werr != nil {
				return nil, 0, werr
			}
			enc = buf.Bytes()
			latest.deltas[fromRound] = enc
		}
		return enc, frameSnapDelta, nil
	}
	if latest.full == nil {
		var buf bytes.Buffer
		if werr := ckpt.Write(&buf, latest.c); werr != nil {
			return nil, 0, werr
		}
		latest.full = buf.Bytes()
	}
	return latest.full, frameSnapFull, nil
}

// FollowerConfig configures a snapshot feed's receiving end.
type FollowerConfig struct {
	// Addr is the publisher's address. Required.
	Addr string
	// Round and Params optionally warm-start the follower: a replica that
	// still holds a published model announces it and receives a delta
	// instead of a full snapshot. Params ownership transfers.
	Round  int64
	Params []float32
	// OnUpdate receives every applied model: a fresh copy the receiver
	// owns, the round it represents, and whether it arrived as a full
	// snapshot. Called on the follower's goroutine, in round order.
	OnUpdate func(model string, params []float32, round, iter int64, full bool)
	// DialBackoff is the initial redial delay, doubled (with jitter) per
	// consecutive failure up to 64× (default 50ms).
	DialBackoff time.Duration
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// MaxPayload bounds one inbound frame (default 256 MiB).
	MaxPayload int
	// Logf receives debug lines (nil: silent).
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fillDefaults() error {
	if c.Addr == "" {
		return errors.New("transport: FollowerConfig.Addr is required")
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 50 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 256 << 20
	}
	return nil
}

// Follower is the receiving end of a snapshot feed: it maintains a shadow
// copy of the published model, applies deltas against it (rejecting any
// whose base does not match bit-for-bit), and redials with backoff when the
// feed drops.
type Follower struct {
	cfg FollowerConfig

	mu     sync.Mutex
	cond   *sync.Cond
	params []float32 // shadow model, owned here
	model  string
	round  int64
	crc    uint32
	closed bool

	fullRecv   atomic.Int64
	deltaRecv  atomic.Int64
	fullBytes  atomic.Int64
	deltaBytes atomic.Int64
	resyncs    atomic.Int64
	redials    atomic.Int64

	stop chan struct{}
	pool bufPool
	wg   sync.WaitGroup
}

// Follow starts a follower. It returns immediately; use WaitRound to block
// until a model (of at least a given round) has been applied.
func Follow(cfg FollowerConfig) (*Follower, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, stop: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	if len(cfg.Params) > 0 {
		f.params = cfg.Params
		f.round = cfg.Round
		f.crc = ckpt.ParamsCRC(cfg.Params)
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Round returns the latest applied round (zero before any model arrived,
// unless warm-started).
func (f *Follower) Round() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.round
}

// WaitRound blocks until the follower has applied a model of at least round
// r or the timeout elapses; it reports whether the condition was met.
func (f *Follower) WaitRound(r int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.params == nil || f.round < r {
		if f.closed || time.Now().After(deadline) {
			return false
		}
		// cond has no timed wait; poke the waiter on a timer.
		t := time.AfterFunc(10*time.Millisecond, f.cond.Broadcast)
		f.cond.Wait()
		t.Stop()
	}
	return true
}

// Stats snapshots the follower's counters.
func (f *Follower) Stats() metrics.FeedStats {
	s := metrics.FeedStats{
		FullSent:   f.fullRecv.Load(),
		DeltaSent:  f.deltaRecv.Load(),
		FullBytes:  f.fullBytes.Load(),
		DeltaBytes: f.deltaBytes.Load(),
		Resyncs:    f.resyncs.Load(),
		Redials:    f.redials.Load(),
	}
	f.mu.Lock()
	s.Round = f.round
	s.Published = f.fullRecv.Load() + f.deltaRecv.Load()
	f.mu.Unlock()
	return s
}

// Close stops following. The last applied model remains with whoever
// received it via OnUpdate.
func (f *Follower) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	close(f.stop)
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// run is the dial/receive loop.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.DialBackoff
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", f.cfg.Addr, f.cfg.DialTimeout)
		if err != nil {
			f.redials.Add(1)
			wait := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
			if backoff < 64*f.cfg.DialBackoff {
				backoff *= 2
			}
			select {
			case <-f.stop:
				return
			case <-time.After(wait):
			}
			continue
		}
		backoff = f.cfg.DialBackoff
		f.serve(conn)
		conn.Close()
	}
}

// serve drains one connection: hello, then updates until it dies. A closing
// follower interrupts the blocking read by closing the connection.
func (f *Follower) serve(conn net.Conn) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-f.stop:
			conn.Close()
		case <-done:
		}
	}()

	f.mu.Lock()
	hello := &header{Type: frameSubHello, Round: uint64(f.round), Aux: uint64(f.crc)}
	f.mu.Unlock()
	if _, err := writeFrame(conn, hello, nil); err != nil {
		return
	}
	for {
		h, payload, _, err := readFrame(conn, f.cfg.MaxPayload, &f.pool)
		if err != nil {
			select {
			case <-f.stop:
			default:
				f.redials.Add(1)
				f.logf("follower: feed lost: %v", err)
			}
			return
		}
		raw := f32Bytes(payload)[:h.Length]
		switch h.Type {
		case frameSnapFull:
			c, cerr := ckpt.Read(bytes.NewReader(raw))
			f.pool.Put(payload)
			if cerr != nil {
				f.logf("follower: bad full snapshot: %v", cerr)
				return
			}
			f.fullRecv.Add(1)
			f.fullBytes.Add(int64(h.Length))
			f.apply(c.Model, c.Params, c.SnapshotRound, c.SnapshotIter, ckpt.ParamsCRC(c.Params), true)
		case frameSnapDelta:
			d, derr := ckpt.ReadDelta(bytes.NewReader(raw))
			f.pool.Put(payload)
			if derr != nil {
				f.logf("follower: bad delta: %v", derr)
				return
			}
			f.deltaRecv.Add(1)
			f.deltaBytes.Add(int64(h.Length))
			f.mu.Lock()
			shadow := f.params
			f.mu.Unlock()
			if shadow == nil {
				f.resyncs.Add(1)
				f.ack(conn) // our (0, 0) state tells the publisher to go full
				continue
			}
			if aerr := d.Apply(shadow); aerr != nil {
				// Base mismatch: we diverged from what the publisher
				// believes. Re-announce our true state; the publisher
				// answers with a full snapshot.
				f.resyncs.Add(1)
				f.logf("follower: delta rejected: %v", aerr)
				f.ack(conn)
				continue
			}
			f.apply(d.Model, shadow, d.ToRound, d.ToIter, d.FullCRC, false)
		default:
			f.pool.Put(payload)
			f.logf("follower: unexpected frame type %d", h.Type)
		}
		if err := f.ack(conn); err != nil {
			return
		}
	}
}

// apply installs a new shadow model and hands the subscriber its own copy.
func (f *Follower) apply(model string, params []float32, round, iter int64, crc uint32, full bool) {
	f.mu.Lock()
	f.model = model
	f.params = params
	f.round = round
	f.crc = crc
	f.cond.Broadcast()
	f.mu.Unlock()
	if f.cfg.OnUpdate != nil {
		f.cfg.OnUpdate(model, append([]float32(nil), params...), round, iter, full)
	}
}

// ack reports the follower's actual state after every inbound frame — the
// publisher's only ground truth about this replica.
func (f *Follower) ack(conn net.Conn) error {
	f.mu.Lock()
	h := &header{Type: frameSubAck, Round: uint64(f.round), Aux: uint64(f.crc)}
	f.mu.Unlock()
	_, err := writeFrame(conn, h, nil)
	return err
}
