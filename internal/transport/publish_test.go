package transport

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"crossbow/internal/ckpt"
)

func feedParams(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	p := make([]float32, n)
	for i := range p {
		p[i] = float32(r.NormFloat64())
	}
	return p
}

func mutated(base []float32, seed int64) []float32 {
	next := append([]float32(nil), base...)
	r := rand.New(rand.NewSource(seed))
	// Touch ~2% of the vector in a few contiguous runs, like one layer's
	// worth of an SGD step.
	run := len(base) / 100
	if run < 1 {
		run = 1
	}
	for k := 0; k < 2; k++ {
		off := r.Intn(len(base) - run)
		for j := 0; j < run; j++ {
			next[off+j] += float32(r.NormFloat64())
		}
	}
	return next
}

func snapAt(params []float32, round int64) *ckpt.Checkpoint {
	return &ckpt.Checkpoint{
		Model:         "resnet32",
		SnapshotRound: round,
		SnapshotIter:  round * 10,
		Params:        params,
	}
}

type feedSink struct {
	mu      sync.Mutex
	params  []float32
	round   int64
	fulls   int
	deltas  int
	updates int
}

func (s *feedSink) onUpdate(model string, params []float32, round, iter int64, full bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params = params
	s.round = round
	s.updates++
	if full {
		s.fulls++
	} else {
		s.deltas++
	}
}

func (s *feedSink) state() (round int64, fulls, deltas int, params []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round, s.fulls, s.deltas, s.params
}

func bitIdentical(t *testing.T, got, want []float32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: params[%d] = %x, want %x", ctx, i,
				math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestFeedConvergence is the happy path: two cold followers join a feed,
// receive one full snapshot each, then track several published rounds via
// deltas, ending bit-identical to the publisher's latest model.
func TestFeedConvergence(t *testing.T) {
	pub, err := NewPublisher(PublisherConfig{Addr: "127.0.0.1:0", ChunkElems: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 4096 + 37
	cur := feedParams(n, 1)
	if err := pub.Publish(snapAt(cur, 1)); err != nil {
		t.Fatal(err)
	}

	sinks := [2]feedSink{}
	fols := [2]*Follower{}
	for i := range fols {
		f, err := Follow(FollowerConfig{Addr: pub.Addr(), OnUpdate: sinks[i].onUpdate})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		fols[i] = f
	}
	for i, f := range fols {
		if !f.WaitRound(1, 5*time.Second) {
			t.Fatalf("follower %d never reached round 1", i)
		}
	}

	for round := int64(2); round <= 5; round++ {
		cur = mutated(cur, round)
		if err := pub.Publish(snapAt(append([]float32(nil), cur...), round)); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range fols {
		if !f.WaitRound(5, 5*time.Second) {
			t.Fatalf("follower %d stuck at round %d", i, f.Round())
		}
	}
	// Acks are sent after OnUpdate returns, but give the last callback a
	// beat to finish before reading the sinks.
	for i := range sinks {
		deadline := time.Now().Add(2 * time.Second)
		for {
			round, fulls, deltas, params := sinks[i].state()
			if round == 5 {
				if fulls != 1 {
					t.Errorf("follower %d: %d full snapshots, want exactly 1 (cold join)", i, fulls)
				}
				if deltas != 4 {
					t.Errorf("follower %d: %d deltas, want 4", i, deltas)
				}
				bitIdentical(t, params, cur, "follower")
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d sink never saw round 5 (at %d)", i, round)
			}
			time.Sleep(time.Millisecond)
		}
	}

	ps := pub.Stats()
	if ps.Subscribers != 2 || ps.Published != 5 || ps.Round != 5 {
		t.Errorf("publisher stats %+v, want 2 subscribers, 5 published, round 5", ps)
	}
	if ps.FullSent != 2 || ps.DeltaSent != 8 {
		t.Errorf("publisher sent %d full / %d delta, want 2 / 8", ps.FullSent, ps.DeltaSent)
	}
	if ps.DeltaBytes/ps.DeltaSent >= ps.FullBytes/ps.FullSent {
		t.Errorf("mean delta payload %d not smaller than mean full payload %d",
			ps.DeltaBytes/ps.DeltaSent, ps.FullBytes/ps.FullSent)
	}
	if ps.Resyncs != 0 {
		t.Errorf("unexpected resyncs: %d", ps.Resyncs)
	}
}

// TestFeedRejoin covers the two rejoin paths: a follower that died and
// comes back warm (still holding a published round) must be healed with a
// delta; one that comes back cold (empty params) needs a full snapshot.
func TestFeedRejoin(t *testing.T) {
	pub, err := NewPublisher(PublisherConfig{Addr: "127.0.0.1:0", ChunkElems: 512, History: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 2048
	cur := feedParams(n, 7)
	if err := pub.Publish(snapAt(cur, 1)); err != nil {
		t.Fatal(err)
	}

	var sink feedSink
	f, err := Follow(FollowerConfig{Addr: pub.Addr(), OnUpdate: sink.onUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if !f.WaitRound(1, 5*time.Second) {
		t.Fatal("follower never got the first snapshot")
	}
	_, _, _, held := sink.state()
	f.Close() // the replica "dies", keeping its last model

	// The fleet moves on while it is gone — but stays within History.
	cur = mutated(cur, 100)
	if err := pub.Publish(snapAt(append([]float32(nil), cur...), 2)); err != nil {
		t.Fatal(err)
	}

	// Warm rejoin: announces round 1 + CRC, must be healed by delta alone.
	var warm feedSink
	f2, err := Follow(FollowerConfig{
		Addr:     pub.Addr(),
		Round:    1,
		Params:   append([]float32(nil), held...),
		OnUpdate: warm.onUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !f2.WaitRound(2, 5*time.Second) {
		t.Fatal("warm rejoin never reached round 2")
	}
	_, fulls, deltas, params := warm.state()
	if fulls != 0 || deltas != 1 {
		t.Errorf("warm rejoin got %d full / %d delta, want 0 / 1", fulls, deltas)
	}
	bitIdentical(t, params, cur, "warm rejoin")

	// Cold rejoin: no params at all, must get a full snapshot.
	var cold feedSink
	f3, err := Follow(FollowerConfig{Addr: pub.Addr(), OnUpdate: cold.onUpdate})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if !f3.WaitRound(2, 5*time.Second) {
		t.Fatal("cold rejoin never reached round 2")
	}
	_, fulls, deltas, params = cold.state()
	if fulls != 1 || deltas != 0 {
		t.Errorf("cold rejoin got %d full / %d delta, want 1 / 0", fulls, deltas)
	}
	bitIdentical(t, params, cur, "cold rejoin")
}

// TestFeedDivergenceResync is the safety pin: a follower whose model has
// silently diverged (its CRC no longer matches any published round) must be
// force-fed a full snapshot, never a delta patched onto a bad base, and end
// bit-identical anyway.
func TestFeedDivergenceResync(t *testing.T) {
	pub, err := NewPublisher(PublisherConfig{Addr: "127.0.0.1:0", ChunkElems: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 2048
	cur := feedParams(n, 9)
	if err := pub.Publish(snapAt(cur, 1)); err != nil {
		t.Fatal(err)
	}

	// A replica claiming round 1 but holding corrupted bytes.
	bad := append([]float32(nil), cur...)
	bad[42] += 1
	var sink feedSink
	f, err := Follow(FollowerConfig{
		Addr:     pub.Addr(),
		Round:    1,
		Params:   bad,
		OnUpdate: sink.onUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cur = mutated(cur, 11)
	if err := pub.Publish(snapAt(append([]float32(nil), cur...), 2)); err != nil {
		t.Fatal(err)
	}
	if !f.WaitRound(2, 5*time.Second) {
		t.Fatal("diverged follower never resynced to round 2")
	}
	_, fulls, _, params := sink.state()
	if fulls == 0 {
		t.Error("diverged follower was healed without a full snapshot")
	}
	bitIdentical(t, params, cur, "resynced follower")
	if pub.Stats().Resyncs == 0 {
		t.Error("publisher did not count the forced resync")
	}
}

// TestFeedLapsedHistory: a follower too far behind (its round evicted from
// the publisher's history ring) falls back to a full snapshot.
func TestFeedLapsedHistory(t *testing.T) {
	pub, err := NewPublisher(PublisherConfig{Addr: "127.0.0.1:0", ChunkElems: 512, History: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 1024
	cur := feedParams(n, 13)
	held := append([]float32(nil), cur...)
	if err := pub.Publish(snapAt(cur, 1)); err != nil {
		t.Fatal(err)
	}
	for round := int64(2); round <= 5; round++ {
		cur = mutated(cur, round)
		if err := pub.Publish(snapAt(append([]float32(nil), cur...), round)); err != nil {
			t.Fatal(err)
		}
	}

	var sink feedSink
	f, err := Follow(FollowerConfig{
		Addr:     pub.Addr(),
		Round:    1, // evicted: history only holds rounds 4 and 5
		Params:   held,
		OnUpdate: sink.onUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.WaitRound(5, 5*time.Second) {
		t.Fatal("lapsed follower never caught up")
	}
	_, fulls, deltas, params := sink.state()
	if fulls != 1 || deltas != 0 {
		t.Errorf("lapsed follower got %d full / %d delta, want 1 / 0", fulls, deltas)
	}
	bitIdentical(t, params, cur, "lapsed follower")
	if pub.Stats().Resyncs != 0 {
		t.Errorf("history miss counted as divergence resync: %d", pub.Stats().Resyncs)
	}
}

// TestFeedPublishValidation pins the publisher's input contract.
func TestFeedPublishValidation(t *testing.T) {
	pub, err := NewPublisher(PublisherConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := pub.Publish(&ckpt.Checkpoint{Model: "m"}); err == nil {
		t.Error("empty checkpoint accepted")
	}
	if err := pub.Publish(snapAt(feedParams(64, 1), 5)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(snapAt(feedParams(64, 2), 5)); err == nil {
		t.Error("non-increasing round accepted")
	}
	if err := pub.Publish(snapAt(feedParams(32, 3), 6)); err == nil {
		t.Error("shape change accepted")
	}
	pub.Close()
	if err := pub.Publish(snapAt(feedParams(64, 4), 7)); err == nil {
		t.Error("publish after Close accepted")
	}
}

// TestFollowerRedial: a follower started before its publisher exists keeps
// redialing and converges once the publisher appears.
func TestFollowerRedial(t *testing.T) {
	// Reserve an address, then close it so the first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var sink feedSink
	f, err := Follow(FollowerConfig{Addr: addr, OnUpdate: sink.onUpdate, DialBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	time.Sleep(50 * time.Millisecond) // let it fail a few dials

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	pub, err := NewPublisher(PublisherConfig{Listener: ln2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	params := feedParams(512, 21)
	if err := pub.Publish(snapAt(params, 3)); err != nil {
		t.Fatal(err)
	}
	if !f.WaitRound(3, 10*time.Second) {
		t.Fatal("follower never converged after publisher came up")
	}
	if f.Stats().Redials == 0 {
		t.Error("redial counter never moved")
	}
	_, _, _, got := sink.state()
	bitIdentical(t, got, params, "redialed follower")
}
