package crossbow

import (
	"fmt"

	"crossbow/internal/autotune"
	"crossbow/internal/cluster"
	"crossbow/internal/core"
	"crossbow/internal/metrics"
	"crossbow/internal/nn"
)

// Interconnect is the cross-server network cost model of the cluster plane
// (latency + bandwidth + collective algorithm). The zero value selects
// 10 Gb/s Ethernet.
type Interconnect = cluster.Interconnect

// Ethernet returns the commodity 10 Gb/s Ethernet interconnect.
func Ethernet() Interconnect { return cluster.Ethernet10G() }

// Ethernet25G returns a 25 Gb/s Ethernet interconnect.
func Ethernet25G() Interconnect { return cluster.Ethernet25G() }

// InfiniBand returns a 100 Gb/s EDR InfiniBand interconnect.
func InfiniBand() Interconnect { return cluster.InfiniBandEDR() }

// ScalingPoint is one entry of a cluster scale-out sweep.
type ScalingPoint = metrics.ScalingPoint

// clusterAlgo maps a user-facing algorithm to the cluster plane's
// statistical algorithm, rejecting algorithms the cluster plane does not
// synchronise hierarchically.
func clusterAlgo(a Algorithm) (Algorithm, error) {
	switch a {
	case SMA, SMAHierarchical, core.AlgoSMACluster:
		return core.AlgoSMACluster, nil
	default:
		return "", fmt.Errorf("crossbow: Servers > 1 requires an SMA algorithm (got %q)", a)
	}
}

// clusterThroughput measures hardware-plane throughput on the simulated
// cluster for the resolved learner count.
func clusterThroughput(cfg Config, learnersPerGPU, iters int) float64 {
	return cluster.New(cluster.Config{
		Model: cfg.Model, Servers: cfg.Servers, GPUsPerServer: cfg.GPUs,
		LearnersPerGPU: learnersPerGPU, Batch: cfg.Batch,
		TauLocal: max(1, cfg.Tau), TauGlobal: cfg.TauGlobal,
		Overlap: true, Net: cfg.Interconnect,
	}).Throughput(iters)
}

// trainCluster runs the scale-out path of Train: auto-tuning against the
// cluster engine, hardware efficiency on the simulated cluster, and
// statistical efficiency with the two-level cluster SMA.
func trainCluster(cfg Config) (*Result, error) {
	algo, err := clusterAlgo(cfg.Algo)
	if err != nil {
		return nil, err
	}
	if cfg.Interconnect == (Interconnect{}) {
		cfg.Interconnect = Ethernet()
	}
	res := &Result{
		LearnersPerGPU: cfg.LearnersPerGPU,
		Servers:        cfg.Servers,
		Interconnect:   cfg.Interconnect,
		Transport:      TransportSimulated,
	}

	if cfg.LearnersPerGPU == AutoTune {
		tuned := autotune.Tune(autotune.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, Batch: cfg.Batch,
			Servers: cfg.Servers, TauGlobal: cfg.TauGlobal, Net: cfg.Interconnect,
		})
		res.LearnersPerGPU = tuned.Chosen
		res.TuneHistory = tuned.History
	} else if cfg.LearnersPerGPU <= 0 {
		res.LearnersPerGPU = 1
	}

	spec := nn.FullSpec(cfg.Model)
	res.ThroughputImgSec = clusterThroughput(cfg, res.LearnersPerGPU, 30)
	if res.ThroughputImgSec > 0 {
		res.EpochSeconds = float64(spec.TrainSamples) / res.ThroughputImgSec
	}

	tr := core.Train(core.TrainConfig{
		Model:           cfg.Model,
		Algo:            algo,
		Servers:         cfg.Servers,
		GPUs:            cfg.GPUs,
		LearnersPerGPU:  res.LearnersPerGPU,
		BatchPerLearner: cfg.Batch,
		LearnRate:       cfg.LearnRate,
		Momentum:        cfg.Momentum,
		LocalMomentum:   cfg.Momentum,

		Tau:               cfg.Tau,
		TauGlobal:         cfg.TauGlobal,
		MaxEpochs:         cfg.MaxEpochs,
		TargetAcc:         cfg.TargetAccuracy,
		Seed:              cfg.Seed,
		Schedule:          cfg.Schedule,
		RestartOnLRChange: cfg.Restart,
		EpochSeconds:      res.EpochSeconds,
		TrainSamples:      cfg.TrainSamples,
		TestSamples:       cfg.TestSamples,
		Scheduler:         cfg.Scheduler,
		KernelMode:        cfg.KernelMode,
		Prefetch:          cfg.Prefetch,
		MemoryBudget:      cfg.MemoryBudget,
		PublishEvery:      cfg.PublishEvery,
		OnSnapshot:        cfg.OnSnapshot,
	})
	res.Series = tr.Series
	res.EpochsToTarget = tr.EpochsToTarget
	res.BestAccuracy = tr.FinalAccuracy
	res.Params = tr.Model
	res.Scheduler = tr.Sched
	res.Wall = tr.Wall
	res.WallImagesPerSec = metrics.MeanImagesPerSec(tr.Wall)
	res.RuntimeStats = tr.RuntimeStats
	res.Mem = tr.Mem
	res.TTASeconds = -1
	if cfg.TargetAccuracy > 0 {
		if t, ok := metrics.TTA(tr.Series, cfg.TargetAccuracy); ok {
			res.TTASeconds = t
		}
	}
	return res, nil
}

// ClusterSweep measures hardware-plane throughput for cfg at each cluster
// size in servers (nil selects 1, 2, 4, 8) and returns one point per size
// with scaling efficiency derived from the smallest. cfg.Servers is
// ignored; every other knob (model, GPUs, learners, batch, τ, network)
// applies to each point. AutoTune resolves the learner count once, on the
// smallest cluster, so the sweep varies only the server count.
func ClusterSweep(cfg Config, servers []int) ([]ScalingPoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if _, err := clusterAlgo(cfg.Algo); err != nil {
		return nil, err
	}
	if servers == nil {
		servers = []int{1, 2, 4, 8}
	}
	smallest := servers[0]
	for _, n := range servers {
		if n < 1 {
			return nil, fmt.Errorf("crossbow: invalid cluster size %d", n)
		}
		if n < smallest {
			smallest = n
		}
	}
	m := cfg.LearnersPerGPU
	if m == AutoTune {
		m = autotune.Tune(autotune.Config{
			Model: cfg.Model, GPUs: cfg.GPUs, Batch: cfg.Batch,
			Servers: smallest, TauGlobal: cfg.TauGlobal, Net: cfg.Interconnect,
		}).Chosen
	} else if m <= 0 {
		m = 1
	}
	spec := nn.FullSpec(cfg.Model)
	points := make([]ScalingPoint, 0, len(servers))
	for _, n := range servers {
		c := cfg
		c.Servers = n
		tp := clusterThroughput(c, m, 30)
		p := ScalingPoint{Servers: n, ThroughputImgSec: tp}
		if tp > 0 {
			p.EpochSeconds = float64(spec.TrainSamples) / tp
		}
		points = append(points, p)
	}
	metrics.FillScalingEfficiency(points)
	return points, nil
}
