package crossbow

import (
	"fmt"
	"time"

	"crossbow/internal/metrics"
	"crossbow/internal/serve"
)

// ServeConfig configures a prediction service over a trained model. Exactly
// one model source must be set: Params (e.g. a Result.Params or a published
// Snapshot) or Checkpoint (a path written by SaveModel/SaveSnapshot).
type ServeConfig struct {
	// Model is the architecture to serve. Required with Params; inferred
	// from the file with Checkpoint (and validated against it if set).
	Model Model
	// Params is the flat model vector to serve. The service takes
	// ownership.
	Params []float32
	// Version tags Params (use the snapshot round; zero is fine for
	// end-of-training models). Ignored with Checkpoint, which carries its
	// own snapshot version.
	Version int64
	// Checkpoint loads the model from a checkpoint file instead: the
	// service then serves exactly the published model the file carries,
	// reporting its recorded snapshot round as the model version.
	Checkpoint string
	// Replicas is the number of concurrent forward-only model replicas
	// (default 1). Throughput scales with replicas until compute saturates.
	Replicas int
	// MaxBatch bounds dynamic micro-batching: up to MaxBatch queued
	// requests coalesce into one forward pass (default 8).
	MaxBatch int
	// MaxDelay bounds how long a non-full batch waits for stragglers.
	// Zero (the default) dispatches immediately with whatever is queued —
	// minimum latency; set a small positive delay (crossbow-serve
	// defaults to 2ms) to trade latency for batch occupancy.
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; Predict blocks (backpressure)
	// while it is full (default Replicas×MaxBatch×4).
	QueueDepth int
	// ShedOnFull switches the full-queue behaviour from backpressure to
	// load shedding: Predict returns ErrOverloaded immediately instead of
	// blocking, keeping admitted requests' latency bounded under overload
	// (sheds are counted in ServingStats.Shed).
	ShedOnFull bool
	// AdmitDeadline, when positive, sheds any request that cannot be
	// answered within this budget — at admission when the queue's
	// estimated drain time already exceeds it, or at dispatch if the
	// request aged past it while queued.
	AdmitDeadline time.Duration
	// KernelMode selects the replicas' GEMM kernel mode: Deterministic
	// (default) or Fast. Fast-mode replicas additionally serve with
	// conv→BN→ReLU chains fused into GEMM epilogues — bit-identical
	// output, smaller inference arenas.
	KernelMode KernelMode
	// Quantize requests the int8 serving path: weights are quantized per
	// output channel when the model is published (and re-quantized on
	// every UpdateSnapshot/UpdateParams), activations dynamically per
	// batch, with int32 accumulation. The switch is gated: quantization
	// only engages if the quantized network's top-1 predictions agree
	// with f32 on at least QuantMinAgreement of a synthesized evaluation
	// set; otherwise the service silently serves f32
	// (Predictor.Quantized reports the outcome).
	Quantize bool
	// QuantMinAgreement overrides the quantization gate's top-1 agreement
	// threshold (default 0.99).
	QuantMinAgreement float64
}

// ErrOverloaded is returned by Predict when the service sheds a request
// under overload (ServeConfig.ShedOnFull / AdmitDeadline). Servers should
// map it to a fast 503.
var ErrOverloaded = serve.ErrOverloaded

// Prediction is one served answer: the arg-max class, its softmax
// confidence, and the model version that computed it.
type Prediction = serve.Prediction

// ServingStats is a point-in-time snapshot of a Predictor's behaviour:
// request/batch counts, batch occupancy, queue pressure and latency
// quantiles.
type ServingStats = metrics.ServingStats

// Predictor is a running prediction service. Predict is safe for
// concurrent use from any number of goroutines; Close drains and stops it.
type Predictor struct {
	eng *serve.Engine
}

// Serve starts a batched prediction service for a trained model (DESIGN.md
// §11): requests coalesce into micro-batches executed by forward-only
// replicas on the blocked kernels, allocation-free per request in steady
// state.
//
// Serving the model a run just trained:
//
//	res, _ := crossbow.Train(cfg)
//	p, _ := crossbow.Serve(crossbow.ServeConfig{Model: cfg.Model, Params: res.Params})
//	defer p.Close()
//	pred, _ := p.Predict(sample)
//
// To serve while training, publish snapshots into the predictor:
//
//	cfg.PublishEvery = 100
//	cfg.OnSnapshot = func(s crossbow.Snapshot) { p.UpdateSnapshot(s) }
func Serve(cfg ServeConfig) (*Predictor, error) {
	params, version := cfg.Params, cfg.Version
	model := cfg.Model
	if cfg.Checkpoint != "" {
		if params != nil {
			return nil, fmt.Errorf("crossbow: ServeConfig.Params and Checkpoint are mutually exclusive")
		}
		c, err := LoadCheckpoint(cfg.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("crossbow: loading %s: %w", cfg.Checkpoint, err)
		}
		if model != "" && model != c.Model {
			return nil, fmt.Errorf("crossbow: checkpoint %s holds %q, config says %q",
				cfg.Checkpoint, c.Model, model)
		}
		model, params, version = c.Model, c.Params, c.SnapshotRound
	}
	eng, err := serve.New(serve.Config{
		Model:         model,
		Params:        params,
		Version:       version,
		Replicas:      cfg.Replicas,
		MaxBatch:      cfg.MaxBatch,
		MaxDelay:      cfg.MaxDelay,
		QueueDepth:    cfg.QueueDepth,
		ShedOnFull:    cfg.ShedOnFull,
		AdmitDeadline: cfg.AdmitDeadline,

		KernelMode:        cfg.KernelMode,
		Quantize:          cfg.Quantize,
		QuantMinAgreement: cfg.QuantMinAgreement,
	})
	if err != nil {
		return nil, err
	}
	return &Predictor{eng: eng}, nil
}

// Predict classifies one sample (a flat [C×H×W] image, SampleVol elements).
// It blocks through queueing, batching and execution — typically one
// MaxDelay plus one batch service time — and is allocation-free per call in
// steady state.
func (p *Predictor) Predict(sample []float32) (Prediction, error) {
	return p.eng.Predict(sample)
}

// UpdateSnapshot hot-swaps the served model to a newer published snapshot
// without dropping or delaying queued requests — the serving half of
// Config.OnSnapshot.
func (p *Predictor) UpdateSnapshot(s Snapshot) error {
	return p.eng.UpdateModel(s.Params, int64(s.Round))
}

// UpdateParams hot-swaps the served model to an arbitrary parameter vector
// under the given version.
func (p *Predictor) UpdateParams(params []float32, version int64) error {
	return p.eng.UpdateModel(params, version)
}

// Model returns the served architecture.
func (p *Predictor) Model() Model { return p.eng.Model() }

// Version returns the version of the currently served model.
func (p *Predictor) Version() int64 { return p.eng.Version() }

// SampleVol returns the expected per-sample element count of Predict inputs.
func (p *Predictor) SampleVol() int { return p.eng.SampleVol() }

// Quantized reports whether the service is answering from the int8 path —
// false when ServeConfig.Quantize was off, or when the publish-time
// agreement gate rejected the model and the service fell back to f32.
func (p *Predictor) Quantized() bool { return p.eng.Quantized() }

// QuantAgreement returns the top-1 agreement the quantization gate measured
// against the f32 network (zero when quantization was never requested).
func (p *Predictor) QuantAgreement() float64 { return p.eng.QuantAgreement() }

// Stats reports the service's behaviour so far.
func (p *Predictor) Stats() ServingStats { return p.eng.Stats() }

// Close stops accepting requests, answers everything already queued, and
// shuts the service down. Predict calls racing Close either complete or
// return serve.ErrClosed.
func (p *Predictor) Close() { p.eng.Close() }
