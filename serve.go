package crossbow

import (
	"fmt"
	"sync"
	"time"

	"crossbow/internal/metrics"
	"crossbow/internal/serve"
	"crossbow/internal/transport"
)

// ServeConfig configures a prediction service over a trained model. At
// least one model source must be set: Params (e.g. a Result.Params or a
// published Snapshot), Checkpoint (a path written by SaveModel/
// SaveSnapshot), or Follow (a live model feed; combined with Params or
// Checkpoint the latter becomes the feed's warm base).
type ServeConfig struct {
	// Model is the architecture to serve. Required with Params; inferred
	// from the file with Checkpoint (and validated against it if set).
	Model Model
	// Params is the flat model vector to serve. The service takes
	// ownership.
	Params []float32
	// Version tags Params (use the snapshot round; zero is fine for
	// end-of-training models). Ignored with Checkpoint, which carries its
	// own snapshot version.
	Version int64
	// Checkpoint loads the model from a checkpoint file instead: the
	// service then serves exactly the published model the file carries,
	// reporting its recorded snapshot round as the model version.
	Checkpoint string
	// Replicas is the number of concurrent forward-only model replicas
	// (default 1). Throughput scales with replicas until compute saturates.
	Replicas int
	// MaxBatch bounds dynamic micro-batching: up to MaxBatch queued
	// requests coalesce into one forward pass (default 8).
	MaxBatch int
	// MaxDelay bounds how long a non-full batch waits for stragglers.
	// Zero (the default) dispatches immediately with whatever is queued —
	// minimum latency; set a small positive delay (crossbow-serve
	// defaults to 2ms) to trade latency for batch occupancy.
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; Predict blocks (backpressure)
	// while it is full (default Replicas×MaxBatch×4).
	QueueDepth int
	// ShedOnFull switches the full-queue behaviour from backpressure to
	// load shedding: Predict returns ErrOverloaded immediately instead of
	// blocking, keeping admitted requests' latency bounded under overload
	// (sheds are counted in ServingStats.Shed).
	ShedOnFull bool
	// AdmitDeadline, when positive, sheds any request that cannot be
	// answered within this budget — at admission when the queue's
	// estimated drain time already exceeds it, or at dispatch if the
	// request aged past it while queued.
	AdmitDeadline time.Duration
	// KernelMode selects the replicas' GEMM kernel mode: Deterministic
	// (default) or Fast. Fast-mode replicas additionally serve with
	// conv→BN→ReLU chains fused into GEMM epilogues — bit-identical
	// output, smaller inference arenas.
	KernelMode KernelMode
	// Quantize requests the int8 serving path: weights are quantized per
	// output channel when the model is published (and re-quantized on
	// every UpdateSnapshot/UpdateParams), activations dynamically per
	// batch, with int32 accumulation. The switch is gated: quantization
	// only engages if the quantized network's top-1 predictions agree
	// with f32 on at least QuantMinAgreement of a synthesized evaluation
	// set; otherwise the service silently serves f32
	// (Predictor.Quantized reports the outcome).
	Quantize bool
	// QuantMinAgreement overrides the quantization gate's top-1 agreement
	// threshold (default 0.99).
	QuantMinAgreement float64
	// SLO switches batching from the static MaxBatch/MaxDelay knobs to the
	// adaptive controller (DESIGN.md §16): the service measures per-class
	// batch service times and arrival rate each control window and picks
	// the smallest batch class whose capacity covers the load while meeting
	// this p99 latency target. MaxBatch becomes the ceiling of the class
	// ladder rather than the operating point.
	SLO time.Duration
	// ControlEvery is the adaptive controller's decision window (default
	// 100ms). Only meaningful with SLO set.
	ControlEvery time.Duration
	// AutoScale, with SLO set, lets the service size its own replica pool:
	// Replicas becomes the floor and AutoScale the ceiling, and the
	// training-side throughput hill-climb (the paper's Algorithm 2) finds
	// the count in between that measured load justifies, with hysteresis
	// for scale-in and demand-drift restart for scale-out.
	AutoScale int
	// Follow subscribes the service to a model feed (a ModelPublisher or
	// Config.PublishAddr) instead of a fixed model: every published
	// snapshot hot-swaps in as it arrives, shipped as a delta against the
	// model the service already holds. Params or Checkpoint may still be
	// set as a warm base — the feed then resumes with deltas instead of a
	// full snapshot (the rejoin path); with neither, Serve blocks until the
	// first snapshot arrives (FollowTimeout) before answering requests.
	Follow string
	// FollowTimeout bounds the cold-start wait for the first snapshot on a
	// Follow feed with no warm base (default 30s).
	FollowTimeout time.Duration
}

// ErrOverloaded is returned by Predict when the service sheds a request
// under overload (ServeConfig.ShedOnFull / AdmitDeadline). Servers should
// map it to a fast 503.
var ErrOverloaded = serve.ErrOverloaded

// Prediction is one served answer: the arg-max class, its softmax
// confidence, and the model version that computed it.
type Prediction = serve.Prediction

// ServingStats is a point-in-time snapshot of a Predictor's behaviour:
// request/batch counts, batch occupancy, queue pressure and latency
// quantiles.
type ServingStats = metrics.ServingStats

// Predictor is a running prediction service. Predict is safe for
// concurrent use from any number of goroutines; Close drains and stops it.
type Predictor struct {
	eng  *serve.Engine
	feed *transport.Follower // non-nil with ServeConfig.Follow
}

// Serve starts a batched prediction service for a trained model (DESIGN.md
// §11): requests coalesce into micro-batches executed by forward-only
// replicas on the blocked kernels, allocation-free per request in steady
// state.
//
// Serving the model a run just trained:
//
//	res, _ := crossbow.Train(cfg)
//	p, _ := crossbow.Serve(crossbow.ServeConfig{Model: cfg.Model, Params: res.Params})
//	defer p.Close()
//	pred, _ := p.Predict(sample)
//
// To serve while training, publish snapshots into the predictor:
//
//	cfg.PublishEvery = 100
//	cfg.OnSnapshot = func(s crossbow.Snapshot) { p.UpdateSnapshot(s) }
func Serve(cfg ServeConfig) (*Predictor, error) {
	params, version := cfg.Params, cfg.Version
	model := cfg.Model
	if cfg.Checkpoint != "" {
		if params != nil {
			return nil, fmt.Errorf("crossbow: ServeConfig.Params and Checkpoint are mutually exclusive")
		}
		c, err := LoadCheckpoint(cfg.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("crossbow: loading %s: %w", cfg.Checkpoint, err)
		}
		if model != "" && model != c.Model {
			return nil, fmt.Errorf("crossbow: checkpoint %s holds %q, config says %q",
				cfg.Checkpoint, c.Model, model)
		}
		model, params, version = c.Model, c.Params, c.SnapshotRound
	}
	var fs *feedState
	if cfg.Follow != "" {
		var err error
		if model, params, version, fs, err = followBase(cfg, model, params, version); err != nil {
			return nil, err
		}
	}
	eng, err := serve.New(serve.Config{
		Model:         model,
		Params:        params,
		Version:       version,
		Replicas:      cfg.Replicas,
		MaxBatch:      cfg.MaxBatch,
		MaxDelay:      cfg.MaxDelay,
		QueueDepth:    cfg.QueueDepth,
		ShedOnFull:    cfg.ShedOnFull,
		AdmitDeadline: cfg.AdmitDeadline,

		KernelMode:        cfg.KernelMode,
		Quantize:          cfg.Quantize,
		QuantMinAgreement: cfg.QuantMinAgreement,

		SLO:          cfg.SLO,
		ControlEvery: cfg.ControlEvery,
		AutoScale:    cfg.AutoScale,
	})
	if err != nil {
		if fs != nil {
			fs.f.Close()
		}
		return nil, err
	}
	p := &Predictor{eng: eng}
	if fs != nil {
		p.feed = fs.f
		// The engine exists now: route every later snapshot into it, and
		// catch any update that raced the handoff by re-applying the
		// follower's newest state once (applying a round twice is harmless).
		fs.mu.Lock()
		fs.eng = eng
		pending := fs.latest
		fs.latest = nil
		fs.mu.Unlock()
		if pending != nil && pending.round > version {
			eng.UpdateModel(pending.params, pending.round)
		}
	}
	return p, nil
}

// feedState bridges a feed follower to the engine built after it — the
// cold-start chicken-and-egg: the first snapshot names the architecture the
// engine needs, so the follower necessarily starts before serve.New can run.
// Until the engine lands, updates park in latest; after, they flow straight
// through.
type feedState struct {
	f *transport.Follower

	mu     sync.Mutex
	eng    *serve.Engine
	latest *feedModel
}

type feedModel struct {
	model  string
	params []float32
	round  int64
}

// followBase starts the feed follower and resolves the engine's starting
// model. With a warm base (Params or Checkpoint) it returns immediately and
// the feed resumes with deltas; cold, it blocks until the first snapshot
// arrives or FollowTimeout passes.
func followBase(cfg ServeConfig, model Model, params []float32, version int64) (Model, []float32, int64, *feedState, error) {
	timeout := cfg.FollowTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	var warm []float32
	if params != nil {
		// Both the follower and the engine take ownership of their vector.
		warm = append([]float32(nil), params...)
	}
	fs := &feedState{}
	first := make(chan struct{})
	var firstOnce sync.Once
	f, err := transport.Follow(transport.FollowerConfig{
		Addr:   cfg.Follow,
		Round:  version,
		Params: warm,
		OnUpdate: func(m string, w []float32, round, iter int64, full bool) {
			fs.mu.Lock()
			eng := fs.eng
			if eng == nil {
				fs.latest = &feedModel{model: m, params: w, round: round}
			}
			fs.mu.Unlock()
			if eng != nil {
				eng.UpdateModel(w, round) // length-checked: a foreign shape is refused
			}
			firstOnce.Do(func() { close(first) })
		},
	})
	if err != nil {
		return "", nil, 0, nil, err
	}
	fs.f = f
	if params != nil {
		return model, params, version, fs, nil // warm: serve the base now
	}
	// Cold start: the first snapshot defines the model.
	select {
	case <-first:
	case <-time.After(timeout):
		f.Close()
		return "", nil, 0, nil, fmt.Errorf("crossbow: no snapshot from feed %s within %v", cfg.Follow, timeout)
	}
	fs.mu.Lock()
	pending := fs.latest
	fs.latest = nil
	fs.mu.Unlock()
	if model != "" && string(model) != pending.model {
		f.Close()
		return "", nil, 0, nil, fmt.Errorf("crossbow: feed %s publishes %q, config says %q",
			cfg.Follow, pending.model, model)
	}
	return Model(pending.model), pending.params, pending.round, fs, nil
}

// Predict classifies one sample (a flat [C×H×W] image, SampleVol elements).
// It blocks through queueing, batching and execution — typically one
// MaxDelay plus one batch service time — and is allocation-free per call in
// steady state.
func (p *Predictor) Predict(sample []float32) (Prediction, error) {
	return p.eng.Predict(sample)
}

// UpdateSnapshot hot-swaps the served model to a newer published snapshot
// without dropping or delaying queued requests — the serving half of
// Config.OnSnapshot.
func (p *Predictor) UpdateSnapshot(s Snapshot) error {
	return p.eng.UpdateModel(s.Params, int64(s.Round))
}

// UpdateParams hot-swaps the served model to an arbitrary parameter vector
// under the given version.
func (p *Predictor) UpdateParams(params []float32, version int64) error {
	return p.eng.UpdateModel(params, version)
}

// Model returns the served architecture.
func (p *Predictor) Model() Model { return p.eng.Model() }

// Version returns the version of the currently served model.
func (p *Predictor) Version() int64 { return p.eng.Version() }

// SampleVol returns the expected per-sample element count of Predict inputs.
func (p *Predictor) SampleVol() int { return p.eng.SampleVol() }

// Quantized reports whether the service is answering from the int8 path —
// false when ServeConfig.Quantize was off, or when the publish-time
// agreement gate rejected the model and the service fell back to f32.
func (p *Predictor) Quantized() bool { return p.eng.Quantized() }

// QuantAgreement returns the top-1 agreement the quantization gate measured
// against the f32 network (zero when quantization was never requested).
func (p *Predictor) QuantAgreement() float64 { return p.eng.QuantAgreement() }

// Stats reports the service's behaviour so far.
func (p *Predictor) Stats() ServingStats { return p.eng.Stats() }

// FeedStats reports model-feed traffic — snapshots received as deltas vs
// fulls, their payload bytes, resyncs, and redials — when the service was
// started with ServeConfig.Follow; the zero FeedStats otherwise.
func (p *Predictor) FeedStats() FeedStats {
	if p.feed == nil {
		return FeedStats{}
	}
	return p.feed.Stats()
}

// Close stops accepting requests, answers everything already queued, and
// shuts the service down (unsubscribing from the model feed first when
// following one). Predict calls racing Close either complete or return
// serve.ErrClosed.
func (p *Predictor) Close() {
	if p.feed != nil {
		p.feed.Close()
	}
	p.eng.Close()
}
